//! One function per paper artifact (tables and figures). Each returns the
//! formatted rows it prints, so the `experiments` binary and EXPERIMENTS.md
//! stay in sync.

use crate::open_loop::{open_loop_measure, OpenLoopConfig};
use crate::setup::{
    collect_trace, new_order_generator, run_live_bench, run_sim, sim_config, trained_houdini, Scale,
};
use common::{derive_seed, Value};
use engine::baselines::{AssumeDistributed, AssumeSinglePartition, Oracle};
use engine::{
    Bucket, CoordSub, CostModel, DurabilityConfig, LiveConfig, LiveRuntime, RequestGenerator,
    RunMetrics, Simulation, TxnAdvisor,
};
use houdini::{
    evaluate_accuracy, train, AccuracyReport, CatalogRule, Houdini, HoudiniConfig, ModelSet,
    TrainingConfig,
};
use mapping::ParamSource;
use markov::{estimate_path, to_dot, EstimateConfig, QueryKind};
use std::fmt::Write as _;
use std::sync::Arc;
use trace::TraceRecord;
use workloads::{tatp, Bench};

/// Cluster sizes of Figs. 3 and 12.
pub const CLUSTER_SIZES: [u32; 5] = [4, 8, 16, 32, 64];

/// Table 4 procedure letters, keyed by (benchmark, registry index).
pub fn proc_letter(bench: Bench, proc: usize) -> char {
    let base = match bench {
        Bench::Tatp => b'A',
        Bench::Tpcc => b'H',
        Bench::AuctionMark => b'M',
    };
    (base + proc as u8) as char
}

fn new_order_trace(parts: u32, n: usize, seed: u64) -> (engine::Catalog, trace::Workload) {
    let mut db = Bench::Tpcc.database(parts);
    let reg = Bench::Tpcc.registry();
    let catalog = reg.catalog();
    let mut gen = new_order_generator(parts, seed);
    use engine::RequestGenerator;
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 8);
        let out = engine::run_offline(&mut db, &reg, &catalog, proc, &args, true)
            .expect("offline NewOrder");
        records.push(out.record);
    }
    (catalog, trace::Workload { records })
}

/// Fig. 3 — NewOrder throughput vs partitions under the three §2.1
/// execution strategies.
pub fn fig3(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 3: NewOrder throughput (txn/s) vs partitions\n\
         parts  proper-selection  assume-single-partition  assume-distributed"
    );
    for parts in CLUSTER_SIZES {
        let mut row = format!("{parts:5}");
        for advisor_id in 0..3 {
            let tps = {
                let mut db = Bench::Tpcc.database(parts);
                let reg = Bench::Tpcc.registry();
                let mut gen = new_order_generator(parts, 11);
                let cfg = sim_config(parts, scale, 17);
                let mut oracle;
                let mut asp;
                let mut adist;
                let advisor: &mut dyn TxnAdvisor = match advisor_id {
                    0 => {
                        oracle = Oracle::new();
                        &mut oracle
                    }
                    1 => {
                        asp = AssumeSinglePartition::new();
                        &mut asp
                    }
                    _ => {
                        adist = AssumeDistributed::new();
                        &mut adist
                    }
                };
                let sim =
                    Simulation::new(&mut db, &reg, advisor, &mut gen, CostModel::default(), cfg);
                let (m, _) = sim.run().expect("fig3 sim");
                m.throughput_tps()
            };
            let _ = write!(row, "  {tps:16.0}");
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Fig. 4 — the global NewOrder Markov model for a 2-partition database
/// (DOT plus structural stats).
pub fn fig4() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let states = model.len();
    let edges: usize = model.vertices().iter().map(|v| v.edges.len()).sum();
    let mut out = format!(
        "# Fig. 4: global NewOrder Markov model, 2 partitions\n\
         states = {states} (incl. begin/commit/abort), edges = {edges}\n"
    );
    let _ = writeln!(
        out,
        "begin successors = {} (one GetWarehouse state per partition)",
        model.vertex(model.begin()).edges.len()
    );
    out.push_str(&to_dot(&model, "NewOrder"));
    out
}

/// Fig. 5 — the probability table of a first GetWarehouse state.
pub fn fig5() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    // Find GetWarehouse counter 0 at partition 0 with empty previous.
    let v = model
        .vertices()
        .iter()
        .find(|v| {
            v.name == "GetWarehouse"
                && v.key.counter == 0
                && v.key.partitions == common::PartitionSet::single(0)
        })
        .expect("GetWarehouse state");
    let mut out = String::from("# Fig. 5: probability table of GetWarehouse (partition 0)\n");
    let _ = writeln!(out, "Single-Partitioned: {:.2}", v.table.single_partition);
    let _ = writeln!(out, "Abort:              {:.2}", v.table.abort);
    let _ = writeln!(out, "partition  read  write  finish");
    for (p, pp) in v.table.partitions.iter().enumerate() {
        let _ = writeln!(out, "{p:9}  {:.2}  {:.2}   {:.2}", pp.read, pp.write, pp.finish);
    }
    out
}

/// Fig. 7 — the NewOrder parameter mapping.
pub fn fig7() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let records = wl.for_proc(1);
    let mapping = mapping::build_mapping(&records, &mapping::MappingConfig::default());
    let mut out = String::from("# Fig. 7: NewOrder parameter mapping\n");
    let proc = catalog.proc(1);
    for ((q, j), m) in mapping.entries() {
        let src = match m.source {
            ParamSource::Scalar(k) => format!("proc param {k}"),
            ParamSource::ArrayElement(k) => format!("proc param {k}[n]"),
        };
        let _ = writeln!(
            out,
            "{}.param[{j}] <- {src}  (coefficient {:.2})",
            proc.query(q).name,
            m.coefficient
        );
    }
    out
}

/// Fig. 8 — the initial execution-path estimate for one NewOrder request.
pub fn fig8() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let mapping = mapping::build_mapping(&records, &mapping::MappingConfig::default());
    // The paper's Fig. 8 example: w_id=0, i_ids=[1001,1002], i_w_ids=[0,1].
    let args = vec![
        Value::Int(0),
        Value::Int(777_000),
        Value::Int(1),
        Value::Array(vec![Value::Int(101), Value::Int(102)]),
        Value::Array(vec![Value::Int(0), Value::Int(1)]),
        Value::Array(vec![Value::Int(2), Value::Int(7)]),
    ];
    let rule = CatalogRule::new(&catalog, 1, 2);
    let est = estimate_path(&model, &rule, &mapping, &args, &EstimateConfig::default());
    let mut out =
        String::from("# Fig. 8: initial path estimate for NewOrder(w_id=0, i_w_ids=[0,1])\n");
    for &v in &est.vertices {
        let vx = model.vertex(v);
        match vx.key.kind {
            QueryKind::Query(_) => {
                let _ = writeln!(
                    out,
                    "  {} counter={} partitions={} previous={}",
                    vx.name, vx.key.counter, vx.key.partitions, vx.key.previous
                );
            }
            _ => {
                let _ = writeln!(out, "  [{}]", vx.name);
            }
        }
    }
    let _ = writeln!(out, "confidence = {:.3}", est.confidence);
    let _ = writeln!(out, "touched = {} (base = {:?})", est.touched, est.best_base());
    let _ = writeln!(out, "abort probability = {:.3}", est.abort_prob);
    out
}

/// Fig. 9 — partitioned NewOrder models and their decision tree.
pub fn fig9() -> String {
    let (catalog, wl) = new_order_trace(2, 3_000, 4);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, 2, &wl, &cfg);
    let pred = &preds[1];
    let mut out = String::from("# Fig. 9: partitioned NewOrder models\n");
    match &pred.models {
        ModelSet::Global { model, .. } => {
            let _ = writeln!(
                out,
                "clustering did not beat the global model on this trace: {} states",
                model.len()
            );
        }
        ModelSet::Partitioned { selected, schema, models, tree, .. } => {
            let feats: Vec<String> = selected
                .iter()
                .map(|&i| format!("{}(param {})", schema[i].category.label(), schema[i].param))
                .collect();
            let _ = writeln!(out, "selected features: {feats:?}");
            let _ = writeln!(out, "decision tree: {} splits, depth {}", tree.splits, tree.depth());
            for (c, m) in models.iter().enumerate() {
                let _ = writeln!(out, "cluster {c}: {} states", m.len());
            }
            let total: usize = models.iter().map(|m| m.len()).sum();
            let (catalog2, wl2) = new_order_trace(2, 3_000, 4);
            let resolver = engine::CatalogResolver::new(&catalog2, 2);
            let global = markov::build_model(1, &wl2.for_proc(1), &resolver);
            let _ = writeln!(
                out,
                "global model {} states vs {} clustered states across {} models \
                 (each cluster model is simpler than the global one)",
                global.len(),
                total,
                models.len()
            );
        }
    }
    out
}

/// Fig. 10 — example models from each benchmark at 4 partitions.
pub fn fig10() -> String {
    let mut out = String::from("# Fig. 10: example Markov models, 4 partitions\n");
    let cases: [(Bench, &str); 3] = [
        (Bench::Tatp, "InsertCallFwrd"),
        (Bench::Tpcc, "Payment"),
        (Bench::AuctionMark, "GetUserInfo"),
    ];
    for (bench, proc_name) in cases {
        let (catalog, wl) = collect_trace(bench, 4, 3_000, 10);
        let proc = catalog.proc_id(proc_name).expect("proc exists");
        let resolver = engine::CatalogResolver::new(&catalog, 4);
        let records = wl.for_proc(proc);
        let model = markov::build_model(proc, &records, &resolver);
        let _ = writeln!(
            out,
            "{} {}: {} states, begin out-degree {}",
            bench.name(),
            proc_name,
            model.len(),
            model.vertex(model.begin()).edges.len()
        );
        // First-query states show the access pattern (broadcast vs single).
        for e in &model.vertex(model.begin()).edges {
            let v = model.vertex(e.to);
            let _ = writeln!(
                out,
                "  begin -> {} partitions={} (p={:.2})",
                v.name, v.key.partitions, e.prob
            );
        }
    }
    out
}

/// Table 3 — global vs partitioned model accuracy per optimization.
pub fn table3(scale: Scale) -> String {
    let parts = 16;
    let n = scale.trace_len() * 2;
    let mut out = String::from(
        "# Table 3: model accuracy (%), 16 partitions, train on first half / test on second\n\
         benchmark    variant      OP1    OP2    OP3    OP4    Total\n",
    );
    for bench in Bench::ALL {
        let (catalog, wl) = collect_trace(bench, parts, n, 23);
        let (train_recs, test_recs) = wl.records.split_at(n / 2);
        let train_wl = trace::Workload { records: train_recs.to_vec() };
        for partitioned in [false, true] {
            let cfg = TrainingConfig { partitioned, ..Default::default() };
            let preds = train(&catalog, parts, &train_wl, &cfg);
            let mut agg = AccuracyReport::default();
            for (proc, pred) in preds.iter().enumerate() {
                let test: Vec<&TraceRecord> =
                    test_recs.iter().filter(|r| r.proc == proc as u32).collect();
                let rep = evaluate_accuracy(pred, &catalog, parts, proc as u32, &test, 0.5);
                agg.merge(&rep);
            }
            let _ = writeln!(
                out,
                "{:<12} {:<11} {:5.1}  {:5.1}  {:5.1}  {:5.1}  {:5.1}",
                bench.name(),
                if partitioned { "partitioned" } else { "global" },
                agg.op1_pct(),
                agg.op2_pct(),
                agg.op3_pct(),
                agg.op4_pct(),
                agg.total_pct()
            );
        }
    }
    out
}

/// Fig. 11 — per-procedure transaction-time breakdown under Houdini
/// (partitioned models, 16 partitions).
pub fn fig11(scale: Scale) -> String {
    let parts = 16;
    let mut out = String::from(
        "# Fig. 11: % of transaction time per bucket (partitioned models, 16 partitions)\n\
         proc                      estim   exec   plan  coord  queue  other\n",
    );
    for bench in Bench::ALL {
        let mut houdini = trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 31);
        let (_, profiler) = run_sim(bench, parts, &mut houdini, scale, 37);
        let catalog = bench.registry().catalog();
        for proc in profiler.procs() {
            let name = &catalog.proc(proc).name;
            let letter = proc_letter(bench, proc as usize);
            // Queueing is always zero here (the simulator has no worker
            // queues); the column keeps the legend aligned with the live
            // breakdown of `live-profile`.
            let _ = writeln!(
                out,
                "{letter} {:<22}  {:5.1}  {:5.1}  {:5.1}  {:5.1}  {:5.1}  {:5.1}",
                name,
                100.0 * profiler.share(proc, Bucket::Estimation),
                100.0 * profiler.share(proc, Bucket::Execution),
                100.0 * profiler.share(proc, Bucket::Planning),
                100.0 * profiler.share(proc, Bucket::Coordination),
                100.0 * profiler.share(proc, Bucket::Queueing),
                100.0 * profiler.share(proc, Bucket::Other),
            );
        }
        let _ = writeln!(
            out,
            "{} overall estimation share: {:.1}%",
            bench.name(),
            100.0 * profiler.overall_share(Bucket::Estimation)
        );
    }
    out
}

/// Table 4 — % of transactions where each optimization was enabled at run
/// time, plus the mean estimation time per transaction.
pub fn table4(scale: Scale) -> String {
    let parts = 16;
    let mut out = String::from(
        "# Table 4: runtime optimization success (%, partitioned models, 16 partitions)\n\
         proc                       OP1     OP2     OP3     OP4   est(ms)\n",
    );
    for bench in Bench::ALL {
        let mut houdini = trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 41);
        let (metrics, profiler) = run_sim(bench, parts, &mut houdini, scale, 43);
        let catalog = bench.registry().catalog();
        let mut procs: Vec<u32> = metrics.ops.keys().copied().collect();
        procs.sort_unstable();
        for proc in procs {
            let ops = &metrics.ops[&proc];
            let letter = proc_letter(bench, proc as usize);
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:6.1}"),
                None => "     -".to_string(),
            };
            let est_ms = profiler.mean_us(proc, Bucket::Estimation) / 1000.0;
            let _ = writeln!(
                out,
                "{letter} {:<22} {}  {}  {}  {}  {:7.3}",
                catalog.proc(proc).name,
                fmt(ops.op1_pct()),
                fmt(ops.op2_pct()),
                fmt(ops.op3_pct()),
                fmt(ops.op4_pct()),
                est_ms
            );
        }
    }
    out
}

/// Fig. 12 — throughput vs partitions: Houdini-partitioned, Houdini-global,
/// assume-single-partition, for all three benchmarks.
pub fn fig12(scale: Scale) -> String {
    let mut out = String::from(
        "# Fig. 12: throughput (txn/s) vs partitions\n\
         bench        parts  houdini-part  houdini-global  assume-single-part\n",
    );
    for bench in Bench::ALL {
        for parts in CLUSTER_SIZES {
            let tps_part = {
                let mut h = trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 51);
                run_sim(bench, parts, &mut h, scale, 53).0.throughput_tps()
            };
            let tps_glob = {
                let mut h = trained_houdini(bench, parts, scale.trace_len(), false, 0.5, 51);
                run_sim(bench, parts, &mut h, scale, 53).0.throughput_tps()
            };
            let tps_asp = {
                let mut a = AssumeSinglePartition::new();
                run_sim(bench, parts, &mut a, scale, 53).0.throughput_tps()
            };
            let _ = writeln!(
                out,
                "{:<12} {parts:5}  {tps_part:12.0}  {tps_glob:14.0}  {tps_asp:19.0}",
                bench.name()
            );
        }
    }
    out
}

/// Fig. 13 — throughput vs the confidence-coefficient threshold.
pub fn fig13(scale: Scale) -> String {
    let parts = 16;
    let thresholds = [0.0, 0.06, 0.1, 0.2, 0.3, 0.4, 0.5, 0.66, 0.8, 0.9, 1.0];
    let mut out = String::from(
        "# Fig. 13: throughput (txn/s) vs confidence threshold, 16 partitions\n\
         threshold     TATP    TPC-C  AuctionMark\n",
    );
    // Train once per benchmark; rebuild the advisor per threshold.
    let mut rows = vec![String::new(); thresholds.len()];
    for (ti, &t) in thresholds.iter().enumerate() {
        rows[ti] = format!("{t:9.2}");
    }
    for bench in Bench::ALL {
        let (catalog, wl) = collect_trace(bench, parts, scale.trace_len(), 61);
        let cfg = TrainingConfig::default();
        let preds = train(&catalog, parts, &wl, &cfg);
        for (ti, &t) in thresholds.iter().enumerate() {
            let hcfg = HoudiniConfig { threshold: t, ..Default::default() };
            let mut h = Houdini::new(preds.clone(), catalog.clone(), parts, hcfg);
            let (m, _) = run_sim(bench, parts, &mut h, scale, 67);
            let _ = write!(rows[ti], "  {:7.0}", m.throughput_tps());
        }
    }
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}

/// Worker counts of the live wall-clock scaling experiment.
pub const LIVE_WORKER_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One measured live-runtime configuration: a row of the `live` tables and
/// of `BENCH_live.json`.
pub struct LiveRow {
    /// Benchmark name (`TATP`, `TPC-C`).
    pub bench: &'static str,
    /// Advisor label (`houdini`, `houdini-no-op4`, `asp`, `lock-all`).
    pub advisor: &'static str,
    /// Worker threads (= partitions).
    pub workers: u32,
    /// The measured run.
    pub metrics: engine::RunMetrics,
}

fn live_config(scale: Scale, seed: u64, requests_quick: u64, msg_delay_us: u64) -> LiveConfig {
    LiveConfig {
        clients_per_partition: 4,
        requests_per_client: match scale {
            Scale::Quick => requests_quick,
            Scale::Full => 2_000,
        },
        max_restarts: 2,
        seed,
        commit_flush_us: 200,
        msg_delay_us,
        ..Default::default()
    }
}

fn measure_live<A: engine::LiveAdvisor + Clone + 'static>(
    bench: Bench,
    label: &'static str,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    seed: u64,
) -> LiveRow {
    let m = measure_once(bench, label, parts, advisor, cfg, seed);
    LiveRow { bench: bench.name(), advisor: label, workers: parts, metrics: m }
}

/// Runs the measurement once, asserting the conservation invariant shared
/// with the deterministic simulator: every issued request either commits
/// or user-aborts — speculative cascades are retried transparently and
/// must not lose or duplicate requests.
fn measure_once<A: engine::LiveAdvisor + Clone + 'static>(
    bench: Bench,
    label: &str,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    seed: u64,
) -> engine::RunMetrics {
    let issued = u64::from(parts) * u64::from(cfg.clients_per_partition) * cfg.requests_per_client;
    let m = run_live_bench(bench, parts, advisor, cfg, seed);
    assert_eq!(
        m.committed + m.user_aborts,
        issued,
        "lost transactions ({} {label} @ {parts}w)",
        bench.name()
    );
    m
}

/// The run with median throughput (whole-metrics, so counters stay
/// internally consistent).
fn median_run(mut runs: Vec<engine::RunMetrics>) -> engine::RunMetrics {
    runs.sort_by(|a, b| a.throughput_tps().total_cmp(&b.throughput_tps()));
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

/// Measures an A/B pair of advisors with *interleaved* rounds (A, B, A, B,
/// …) and per-arm medians. Wall-clock noise on small shared hosts is
/// ±2-3% per run and drifts slowly — larger than the effects the OP4
/// ablation measures — so back-to-back interleaving turns the drift into
/// paired noise the medians cancel.
#[allow(clippy::too_many_arguments)]
fn measure_live_pair<A, B>(
    bench: Bench,
    label_a: &'static str,
    label_b: &'static str,
    parts: u32,
    advisor_a: &A,
    advisor_b: &B,
    cfg: &LiveConfig,
    seed: u64,
    rounds: u32,
) -> (LiveRow, LiveRow)
where
    A: engine::LiveAdvisor + Clone + 'static,
    B: engine::LiveAdvisor + Clone + 'static,
{
    let mut runs_a = Vec::new();
    let mut runs_b = Vec::new();
    for _ in 0..rounds.max(1) {
        runs_a.push(measure_once(bench, label_a, parts, advisor_a, cfg, seed));
        runs_b.push(measure_once(bench, label_b, parts, advisor_b, cfg, seed));
    }
    (
        LiveRow {
            bench: bench.name(),
            advisor: label_a,
            workers: parts,
            metrics: median_run(runs_a),
        },
        LiveRow {
            bench: bench.name(),
            advisor: label_b,
            workers: parts,
            metrics: median_run(runs_b),
        },
    )
}

/// Runs every live-runtime measurement: the TATP scaling sweep (Houdini vs
/// the two baselines) and the TPC-C OP4 ablation sweep (Houdini with early
/// prepare + speculation on vs off, plus lock-all).
pub fn live_rows(scale: Scale) -> Vec<LiveRow> {
    let mut rows = Vec::new();
    // TATP: the worker-count scaling sweep, directly comparable with the
    // PR 2 run log (no modeled message latency; scaling comes from
    // overlapping commit flushes). Like the OP4 ablation below, arms are
    // interleaved round-robin and each arm records its median-of-3 run:
    // single runs on a shared 1-core host swing ±8% — more than the
    // advisor effects the sweep compares.
    for parts in LIVE_WORKER_COUNTS {
        let cfg = live_config(scale, 71, 250, 0);
        let houdini =
            Arc::new(trained_houdini(Bench::Tatp, parts, scale.trace_len(), true, 0.5, 71));
        let asp = Arc::new(AssumeSinglePartition::new());
        let adist = Arc::new(AssumeDistributed::new());
        let (mut h_runs, mut a_runs, mut d_runs) = (Vec::new(), Vec::new(), Vec::new());
        for _ in 0..3 {
            h_runs.push(measure_once(Bench::Tatp, "houdini", parts, &houdini, &cfg, 73));
            a_runs.push(measure_once(Bench::Tatp, "asp", parts, &asp, &cfg, 73));
            d_runs.push(measure_once(Bench::Tatp, "lock-all", parts, &adist, &cfg, 73));
        }
        let row = |advisor, runs| LiveRow {
            bench: Bench::Tatp.name(),
            advisor,
            workers: parts,
            metrics: median_run(runs),
        };
        rows.push(row("houdini", h_runs));
        rows.push(row("asp", a_runs));
        rows.push(row("lock-all", d_runs));
    }
    // TPC-C is the distributed-heavy workload that actually exercises OP4:
    // remote NewOrder/Payment hold multi-partition lock sets across the
    // 2PC vote/commit rounds and commit flushes. Message latency is
    // modeled at the simulator's `remote_msg_us` (60 µs one-way) so the
    // lock-hold time OP4 reclaims exists in wall-clock terms, and the
    // ablation pair runs long (1000 requests/client at quick scale) to
    // keep the comparison above scheduler noise on small hosts.
    for parts in LIVE_WORKER_COUNTS {
        let cfg = live_config(scale, 79, 1_000, 60);
        // One trace + training pass serves both ablation arms: the config
        // knob is read only at plan time, never during training.
        let (catalog, workload) = collect_trace(Bench::Tpcc, parts, scale.trace_len(), 79);
        let preds = train(&catalog, parts, &workload, &TrainingConfig::default());
        let op4 =
            Arc::new(Houdini::new(preds.clone(), catalog.clone(), parts, HoudiniConfig::default()));
        let no_op4 = Arc::new(Houdini::new(
            preds,
            catalog,
            parts,
            HoudiniConfig { early_prepare: false, ..Default::default() },
        ));
        let (row_on, row_off) = measure_live_pair(
            Bench::Tpcc,
            "houdini",
            "houdini-no-op4",
            parts,
            &op4,
            &no_op4,
            &cfg,
            83,
            3,
        );
        rows.push(row_on);
        rows.push(row_off);
        // The lock-all baseline is an order of magnitude slower under 2PC
        // rounds + message latency; a shorter stream keeps its wall-clock
        // bounded without touching the ablation pair.
        let adist = Arc::new(AssumeDistributed::new());
        let cfg_lockall = live_config(scale, 79, 250, 60);
        rows.push(measure_live(Bench::Tpcc, "lock-all", parts, &adist, &cfg_lockall, 83));
    }
    rows
}

/// Offered-load fractions of the measured closed-loop capacity swept by
/// the open-loop latency experiment.
pub const OPEN_LOOP_LOAD_FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// One measured open-loop configuration: a row of the `latency` section
/// of `BENCH_live.json` (latency quantiles vs offered load).
pub struct LatencyRow {
    /// Benchmark name (`TATP`).
    pub bench: &'static str,
    /// Advisor label (`houdini`).
    pub advisor: &'static str,
    /// Worker threads (= partitions).
    pub workers: u32,
    /// Offered load (scheduled arrivals/second).
    pub offered_tps: f64,
    /// Achieved committed throughput (wall-clock).
    pub achieved_tps: f64,
    /// Open-loop latency quantiles (ms), measured from *scheduled*
    /// arrival to completion (coordinated-omission-corrected).
    pub p50_ms: Option<f64>,
    /// 95th percentile (ms).
    pub p95_ms: Option<f64>,
    /// 99th percentile (ms).
    pub p99_ms: Option<f64>,
    /// Committed transactions in the window.
    pub committed: u64,
    /// User aborts in the window.
    pub user_aborts: u64,
}

/// The open-loop offered-load sweep (`latency` section of
/// `BENCH_live.json`): Poisson-ish arrivals against a TATP
/// `LiveRuntime` at fractions of the measured closed-loop capacity.
/// Closed loops hide queueing delay (a saturated server just slows the
/// arrival stream down); this sweep is where latency-under-load becomes
/// visible, and it only exists because the handle API lets submitter
/// threads own their arrival schedules.
pub fn latency_rows(scale: Scale) -> Vec<LatencyRow> {
    let houdini =
        Arc::new(trained_houdini(Bench::Tatp, LATENCY_PARTS, scale.trace_len(), true, 0.5, 71));
    // Closed-loop capacity anchors the sweep: offered load is expressed
    // as a fraction of what saturated closed-loop clients achieve on this
    // host, so the sweep lands on the interesting part of the latency
    // curve whatever the hardware. (`live` reuses its own scaling-row
    // measurement instead of running this extra benchmark.)
    let cfg = live_config(scale, 107, 250, 0);
    let capacity =
        measure_once(Bench::Tatp, "houdini", LATENCY_PARTS, &houdini, &cfg, 109).throughput_tps();
    latency_rows_at(scale, &houdini, capacity)
}

/// Worker count (= partitions) of the open-loop latency sweep.
const LATENCY_PARTS: u32 = 4;

/// The sweep core behind [`latency_rows`]: takes the trained advisor and
/// the closed-loop capacity anchor from the caller, so `live` — which has
/// both in hand from its scaling rows — does not retrain or re-measure.
fn latency_rows_at(scale: Scale, houdini: &Arc<Houdini>, capacity: f64) -> Vec<LatencyRow> {
    let parts = LATENCY_PARTS;
    let cfg = live_config(scale, 107, 250, 0);
    let window_s = match scale {
        Scale::Quick => 0.6,
        Scale::Full => 2.0,
    };
    let submitters = parts * 4;
    OPEN_LOOP_LOAD_FRACTIONS
        .iter()
        .map(|&frac| {
            let offered = (capacity * frac).max(200.0);
            let requests = (offered * window_s) as u64;
            let ol = OpenLoopConfig { offered_tps: offered, submitters, requests, seed: 113 };
            let m = open_loop_measure(Bench::Tatp, parts, houdini, &cfg, &ol);
            LatencyRow {
                bench: "TATP",
                advisor: "houdini",
                workers: parts,
                offered_tps: m.offered_tps,
                achieved_tps: m.achieved_tps,
                p50_ms: m.latency.p50_ms(),
                p95_ms: m.latency.p95_ms(),
                p99_ms: m.latency.p99_ms(),
                committed: m.metrics.committed,
                user_aborts: m.metrics.user_aborts,
            }
        })
        .collect()
}

/// One measured configuration of the `live-drift` experiment: an arm
/// (maintenance on/off) in one measurement window (pre- or post-shift).
pub struct DriftRow {
    /// Arm label (`houdini-maint`, `houdini-frozen`).
    pub advisor: &'static str,
    /// Window label (`pre-shift`, `post-shift`).
    pub phase: &'static str,
    /// Worker threads (= partitions).
    pub workers: u32,
    /// The measured window.
    pub metrics: RunMetrics,
}

/// One measured arm pair of the `live-durability` experiment: the same
/// quick-scale TATP configuration run with real per-partition command
/// logging (`FileDevice` fsync at the default group-commit cadence) and
/// without any durability, plus the cost of recovering from the logged
/// run's on-disk state. A row of the `durability` section of
/// `BENCH_live.json`.
pub struct DurabilityRow {
    /// Benchmark name (`TATP`).
    pub bench: &'static str,
    /// Advisor label (`houdini`).
    pub advisor: &'static str,
    /// Scratch device backing the command log: `"ram"` (a tmpfs mount —
    /// fsync completes in memory, isolating the subsystem's own cost) or
    /// `"disk"` (the OS temp dir — adds the real device's fsync latency).
    pub device: &'static str,
    /// Worker threads (= partitions).
    pub workers: u32,
    /// Committed throughput without durability (txn/s).
    pub baseline_tps: f64,
    /// Committed throughput with command logging enabled (txn/s).
    pub logging_tps: f64,
    /// Relative throughput cost of logging, in percent
    /// (`100 * (1 - logging/baseline)`; negative when logging measured
    /// faster, i.e. the difference is inside run-to-run noise).
    pub overhead_pct: f64,
    /// Log records appended during the logging run.
    pub log_records: u64,
    /// Log bytes written during the logging run.
    pub log_bytes: u64,
    /// Consistent snapshots taken during the logging run.
    pub snapshots: u64,
    /// Wall-clock cost of `LiveRuntime::recover` over the logging run's
    /// final on-disk state (snapshot restore + log replay), in ms.
    pub recovery_ms: f64,
    /// Committed transactions replayed from the log during recovery.
    pub replayed: u64,
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"))
}

/// Renders the `"rows"` section of `BENCH_live.json` (without trailing
/// newline; see [`write_bench_live`] for the file layout).
fn render_rows_section(rows: &[LiveRow]) -> String {
    let mut s = String::from("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        let sum = m.summary();
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"advisor\": \"{}\", \"workers\": {}, \
             \"throughput_tps\": {:.1}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
             \"committed\": {}, \"user_aborts\": {}, \"restarts\": {}, \"distributed\": {}, \
             \"speculative\": {}, \"cascaded_aborts\": {}, \"lock_hold_mean_ms\": {}, \
             \"lock_hold_p95_ms\": {}, \"model_swaps\": {}, \"feedback_dropped\": {}, \
             \"flushes_total\": {}, \"flushes_coalesced\": {}}}",
            r.bench,
            r.advisor,
            r.workers,
            sum.throughput_tps,
            fmt_opt(sum.p50_ms),
            fmt_opt(sum.p95_ms),
            fmt_opt(sum.p99_ms),
            sum.committed,
            sum.user_aborts,
            sum.restarts,
            m.distributed,
            m.speculative,
            m.cascaded_aborts,
            fmt_opt(m.lock_hold.mean_us().map(|us| us / 1000.0)),
            fmt_opt(m.lock_hold.p95_ms()),
            m.model_swaps,
            m.feedback_dropped,
            sum.flushes_total,
            sum.flushes_coalesced,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Renders the `"latency"` section of `BENCH_live.json`.
fn render_latency_section(rows: &[LatencyRow]) -> String {
    let mut s = String::from("  \"latency\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"advisor\": \"{}\", \"workers\": {}, \
             \"offered_tps\": {:.1}, \"achieved_tps\": {:.1}, \"p50_ms\": {}, \
             \"p95_ms\": {}, \"p99_ms\": {}, \"committed\": {}, \"user_aborts\": {}}}",
            r.bench,
            r.advisor,
            r.workers,
            r.offered_tps,
            r.achieved_tps,
            fmt_opt(r.p50_ms),
            fmt_opt(r.p95_ms),
            fmt_opt(r.p99_ms),
            r.committed,
            r.user_aborts,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Renders the `"drift"` section of `BENCH_live.json`.
fn render_drift_section(rows: &[DriftRow]) -> String {
    let mut s = String::from("  \"drift\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        let epochs: Vec<String> = m
            .epoch_accuracy
            .iter()
            .map(|e| {
                format!(
                    "{{\"epoch\": {}, \"observed\": {}, \"matched\": {}}}",
                    e.epoch, e.observed, e.matched
                )
            })
            .collect();
        let _ = write!(
            s,
            "    {{\"advisor\": \"{}\", \"phase\": \"{}\", \"workers\": {}, \
             \"throughput_tps\": {:.1}, \"committed\": {}, \"user_aborts\": {}, \
             \"restarts\": {}, \"single_partition\": {}, \"distributed\": {}, \
             \"op2_pct\": {}, \"model_swaps\": {}, \"feedback_records\": {}, \
             \"feedback_dropped\": {}, \"epoch_accuracy\": [{}]}}",
            r.advisor,
            r.phase,
            r.workers,
            m.throughput_tps(),
            m.committed,
            m.user_aborts,
            m.restarts,
            m.single_partition,
            m.distributed,
            fmt_opt(m.overall_op2_pct()),
            m.model_swaps,
            m.feedback_records,
            m.feedback_dropped,
            epochs.join(", "),
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Renders the `"durability"` section of `BENCH_live.json`.
fn render_durability_section(rows: &[DurabilityRow]) -> String {
    let mut s = String::from("  \"durability\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"advisor\": \"{}\", \"device\": \"{}\", \
             \"workers\": {}, \
             \"baseline_tps\": {:.1}, \"logging_tps\": {:.1}, \"overhead_pct\": {:.2}, \
             \"log_records\": {}, \"log_bytes\": {}, \"snapshots\": {}, \
             \"recovery_ms\": {:.2}, \"replayed\": {}}}",
            r.bench,
            r.advisor,
            r.device,
            r.workers,
            r.baseline_tps,
            r.logging_tps,
            r.overhead_pct,
            r.log_records,
            r.log_bytes,
            r.snapshots,
            r.recovery_ms,
            r.replayed,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Renders the `"profile"` section of `BENCH_live.json` (schema 6): the
/// live runtime's Fig. 11 breakdown — per-stage shares of the attributed
/// call wall time, the `Coordination` sub-bucket split (lock wait / 2PC /
/// sequenced commit flush, same denominator, so the three sum to at most
/// `coord_pct`), plus the mean attributed microseconds per resolved call,
/// per measured configuration.
fn render_profile_section(rows: &[LiveRow]) -> String {
    let mut s = String::from("  \"profile\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let p = &r.metrics.profile;
        let txns = p.total_txns();
        let mean_call_us = if txns > 0 { p.grand_total_us() / txns as f64 } else { 0.0 };
        let pct = |b: Bucket| 100.0 * p.overall_share(b);
        let sub = |c: CoordSub| 100.0 * p.overall_coord_share(c);
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"advisor\": \"{}\", \"workers\": {}, \"txns\": {}, \
             \"est_pct\": {:.2}, \"exec_pct\": {:.2}, \"coord_pct\": {:.2}, \
             \"lock_pct\": {:.2}, \"twopc_pct\": {:.2}, \"flush_pct\": {:.2}, \
             \"queue_pct\": {:.2}, \"other_pct\": {:.2}, \"mean_call_us\": {:.1}}}",
            r.bench,
            r.advisor,
            r.workers,
            txns,
            pct(Bucket::Estimation),
            pct(Bucket::Execution),
            pct(Bucket::Coordination),
            sub(CoordSub::LockWait),
            sub(CoordSub::TwoPc),
            sub(CoordSub::Flush),
            pct(Bucket::Queueing),
            pct(Bucket::Other),
            mean_call_us,
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]");
    s
}

/// Renders the human-readable live Fig. 11 table (per-stage shares of the
/// attributed call wall time) shared by `live` and `live-profile`.
fn render_profile_table<'a>(rows: impl IntoIterator<Item = &'a LiveRow>) -> String {
    let mut out = String::from(
        "# Live Fig. 11: % of attributed call time per stage (wall clock)\n\
         # lock/2pc/flush split the coord% total (distributed path only)\n\
         bench   advisor          workers   est%  exec%  coord%  lock%  2pc%  flush%  queue%  other%  mean-call-us    txns\n",
    );
    for r in rows {
        let p = &r.metrics.profile;
        let txns = p.total_txns();
        let mean_call_us = if txns > 0 { p.grand_total_us() / txns as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<7} {:<16} {:7}  {:5.1}  {:5.1}  {:6.1}  {:5.1}  {:4.1}  {:6.1}  {:6.1}  {:6.1}  {:12.1}  {:6}",
            r.bench,
            r.advisor,
            r.workers,
            100.0 * p.overall_share(Bucket::Estimation),
            100.0 * p.overall_share(Bucket::Execution),
            100.0 * p.overall_share(Bucket::Coordination),
            100.0 * p.overall_coord_share(CoordSub::LockWait),
            100.0 * p.overall_coord_share(CoordSub::TwoPc),
            100.0 * p.overall_coord_share(CoordSub::Flush),
            100.0 * p.overall_share(Bucket::Queueing),
            100.0 * p.overall_share(Bucket::Other),
            mean_call_us,
            txns,
        );
    }
    out
}

/// Extracts a top-level section (`"rows"` or `"drift"`) from a previously
/// written `BENCH_live.json`, so the experiment that measures one section
/// carries the other forward instead of clobbering it. Relies on the fixed
/// machine-written layout: the section opens with `  "<key>": [` and is
/// the first construct closed by a two-space-indented `]` (entries are
/// one-per-line at four spaces).
fn extract_section(existing: &str, key: &str) -> Option<String> {
    let start = existing.find(&format!("  \"{key}\": ["))?;
    let rest = &existing[start..];
    // An empty section closes on the opening line; otherwise the close is
    // the first two-space-indented bracket line.
    if rest.starts_with(&format!("  \"{key}\": []")) {
        return Some(format!("  \"{key}\": []"));
    }
    let end = rest.find("\n  ]")?;
    Some(rest[..end + 4].to_string())
}

/// Renders the `"host"` section: the revision and machine that produced
/// the numbers. Regenerated on every write — never carried forward — so
/// the file always names the commit its measurements belong to, which is
/// what makes cross-PR comparisons of the perf trajectory trustworthy.
fn host_section() -> String {
    let from_cmd = |cmd: &str, args: &[&str]| {
        std::process::Command::new(cmd)
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into())
    };
    let commit = from_cmd("git", &["rev-parse", "--short=12", "HEAD"]);
    let date = from_cmd("date", &["-u", "+%F"]);
    let cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    format!("  \"host\": {{ \"commit\": \"{commit}\", \"cores\": {cores}, \"date\": \"{date}\" }}")
}

/// Machine-readable form of the live measurements, for tracking the perf
/// trajectory across PRs (flat JSON, no serde dependency needed for a
/// fixed schema). Schema 7 (adds the `durability` logging-overhead /
/// recovery section; schema 6 added per-row coalesced-flush counters to
/// `rows` and the Coordination sub-bucket split to `profile`): `host`
/// (the commit, core count, and date the
/// numbers were measured at — regenerated on every write), `rows`
/// (scaling/ablation sweeps, written by `live`), `latency` (the open-loop
/// offered-load sweep, written by `live` and `live-latency`), `drift`
/// (the `live-drift` maintenance experiment), `profile` (the live
/// Fig. 11 per-stage breakdown, written by `live` and `live-profile`),
/// and `durability` (the command-logging overhead + recovery cost pair,
/// written by `live-durability`); each experiment rewrites its own
/// section(s) and carries the others forward from `existing` (the
/// previous file contents, if any).
pub fn bench_live_json(
    rows: Option<&[LiveRow]>,
    latency: Option<&[LatencyRow]>,
    drift: Option<&[DriftRow]>,
    profile: Option<&[LiveRow]>,
    durability: Option<&[DurabilityRow]>,
    scale: Scale,
    existing: Option<&str>,
) -> String {
    let rows_section = match rows {
        Some(r) => render_rows_section(r),
        None => existing
            .and_then(|e| extract_section(e, "rows"))
            .unwrap_or_else(|| String::from("  \"rows\": []")),
    };
    let latency_section = match latency {
        Some(l) => render_latency_section(l),
        None => existing
            .and_then(|e| extract_section(e, "latency"))
            .unwrap_or_else(|| String::from("  \"latency\": []")),
    };
    let drift_section = match drift {
        Some(d) => render_drift_section(d),
        None => existing
            .and_then(|e| extract_section(e, "drift"))
            .unwrap_or_else(|| String::from("  \"drift\": []")),
    };
    let profile_section = match profile {
        Some(p) => render_profile_section(p),
        None => existing
            .and_then(|e| extract_section(e, "profile"))
            .unwrap_or_else(|| String::from("  \"profile\": []")),
    };
    let durability_section = match durability {
        Some(d) => render_durability_section(d),
        None => existing
            .and_then(|e| extract_section(e, "durability"))
            .unwrap_or_else(|| String::from("  \"durability\": []")),
    };
    let mut s = String::from("{\n  \"schema\": 7,\n");
    let _ =
        writeln!(s, "  \"scale\": \"{}\",", if scale == Scale::Full { "full" } else { "quick" });
    s.push_str(&host_section());
    s.push_str(",\n");
    s.push_str(&rows_section);
    s.push_str(",\n");
    s.push_str(&latency_section);
    s.push_str(",\n");
    s.push_str(&drift_section);
    s.push_str(",\n");
    s.push_str(&profile_section);
    s.push_str(",\n");
    s.push_str(&durability_section);
    s.push_str("\n}\n");
    s
}

/// Rewrites `BENCH_live.json` with the given section(s), preserving the
/// others from the existing file. Returns a status line.
fn write_bench_live(
    rows: Option<&[LiveRow]>,
    latency: Option<&[LatencyRow]>,
    drift: Option<&[DriftRow]>,
    profile: Option<&[LiveRow]>,
    durability: Option<&[DurabilityRow]>,
    scale: Scale,
) -> String {
    let existing = std::fs::read_to_string("BENCH_live.json").ok();
    let mut written = Vec::new();
    if rows.is_some() {
        written.push("rows");
    }
    if latency.is_some() {
        written.push("latency");
    }
    if drift.is_some() {
        written.push("drift");
    }
    if profile.is_some() {
        written.push("profile");
    }
    if durability.is_some() {
        written.push("durability");
    }
    let json =
        bench_live_json(rows, latency, drift, profile, durability, scale, existing.as_deref());
    match std::fs::write("BENCH_live.json", json) {
        Ok(()) => format!("({} section(s) written to BENCH_live.json)", written.join("+")),
        Err(e) => format!("(could not write BENCH_live.json: {e})"),
    }
}

/// `live` — *measured* wall-clock throughput on the multi-threaded
/// partition runtime: one OS worker thread per partition. TATP sweeps
/// Houdini against the assume-single-partition and lock-all baselines;
/// TPC-C ablates OP4 (early prepare + speculative execution) on vs off.
/// Also writes the rows to `BENCH_live.json` in the working directory.
///
/// Each commit pays a real 200 µs synchronous log-flush sleep at its
/// participating partition(s); flushes on different partitions overlap in
/// wall-clock time, so scaling reflects genuine partition concurrency even
/// on machines with fewer cores than workers (DESIGN.md §"Live runtime").
pub fn live(scale: Scale) -> String {
    let rows = live_rows(scale);
    // The open-loop sweep anchors on closed-loop capacity; the scaling
    // rows just measured exactly that configuration (TATP / houdini /
    // LATENCY_PARTS workers), so reuse it instead of re-benchmarking.
    // The advisor is retrained with the same inputs as the rows' one
    // (training is deterministic), so the sweep plans identically.
    let houdini =
        Arc::new(trained_houdini(Bench::Tatp, LATENCY_PARTS, scale.trace_len(), true, 0.5, 71));
    let capacity = rows
        .iter()
        .find(|r| r.bench == "TATP" && r.advisor == "houdini" && r.workers == LATENCY_PARTS)
        .expect("scaling sweep measured the latency anchor configuration")
        .metrics
        .throughput_tps();
    let latency = latency_rows_at(scale, &houdini, capacity);
    let get = |bench: &str, advisor: &str, workers: u32| -> &engine::RunMetrics {
        &rows
            .iter()
            .find(|r| r.bench == bench && r.advisor == advisor && r.workers == workers)
            .expect("row measured")
            .metrics
    };
    let q = |v: Option<f64>| v.map_or_else(|| "      -".into(), |x| format!("{x:7.2}"));
    let mut out = String::from(
        "# Live runtime: wall-clock TATP throughput (txn/s), one worker thread per partition\n\
         # h-lockms is `-` when no transaction held a multi-partition lock set\n\
         workers  houdini  asp      lock-all  h-p50ms  h-p95ms  h-p99ms  h-commit  h-abort  h-restart  h-spec  h-lockms  h-flush(coal)\n",
    );
    for parts in LIVE_WORKER_COUNTS {
        let hm = get("TATP", "houdini", parts);
        let hs = hm.summary();
        let am = get("TATP", "asp", parts);
        let dm = get("TATP", "lock-all", parts);
        let _ = writeln!(
            out,
            "{parts:7}  {:7.0}  {:7.0}  {:8.0}  {}  {}  {}  {:8}  {:7}  {:9}  {:6}  {:>8}  {:6} ({})",
            hs.throughput_tps,
            am.throughput_tps(),
            dm.throughput_tps(),
            q(hs.p50_ms),
            q(hs.p95_ms),
            q(hs.p99_ms),
            hs.committed,
            hs.user_aborts,
            hs.restarts,
            hm.speculative,
            q(hm.lock_hold.mean_us().map(|us| us / 1000.0)),
            hs.flushes_total,
            hs.flushes_coalesced,
        );
    }
    let _ = writeln!(
        out,
        "\n# Live runtime: wall-clock TPC-C throughput (txn/s) — OP4 early-prepare + speculation ablation\n\
         workers  op4-on   op4-off  lock-all  on-spec  on-cascade  on-lockms  off-lockms"
    );
    for parts in LIVE_WORKER_COUNTS {
        let on = get("TPC-C", "houdini", parts);
        let off = get("TPC-C", "houdini-no-op4", parts);
        let dm = get("TPC-C", "lock-all", parts);
        let _ = writeln!(
            out,
            "{parts:7}  {:7.0}  {:7.0}  {:8.0}  {:7}  {:10}  {:>9}  {:>10}",
            on.throughput_tps(),
            off.throughput_tps(),
            dm.throughput_tps(),
            on.speculative,
            on.cascaded_aborts,
            q(on.lock_hold.mean_us().map(|us| us / 1000.0)),
            q(off.lock_hold.mean_us().map(|us| us / 1000.0)),
        );
    }
    out.push('\n');
    out.push_str(&render_latency_table(&latency));
    out.push('\n');
    out.push_str(&render_profile_table(rows.iter().filter(|r| r.advisor == "houdini")));
    let _ = writeln!(
        out,
        "\n{}",
        write_bench_live(Some(&rows), Some(&latency), None, Some(&rows), None, scale)
    );
    out
}

/// Renders the human-readable open-loop sweep table shared by `live` and
/// `live-latency`.
fn render_latency_table(latency: &[LatencyRow]) -> String {
    let q = |v: Option<f64>| v.map_or_else(|| "      -".into(), |x| format!("{x:7.2}"));
    let mut out = String::from(
        "# Open loop: TATP latency vs offered load (Poisson arrivals, 4 workers, houdini)\n\
         # latency measured from scheduled arrival (coordinated-omission corrected)\n\
         offered-tps  achieved-tps  p50ms    p95ms    p99ms    committed  aborts\n",
    );
    for r in latency {
        let _ = writeln!(
            out,
            "{:11.0}  {:12.0}  {}  {}  {}  {:9}  {:6}",
            r.offered_tps,
            r.achieved_tps,
            q(r.p50_ms),
            q(r.p95_ms),
            q(r.p99_ms),
            r.committed,
            r.user_aborts,
        );
    }
    out
}

/// `live-latency` — just the open-loop offered-load sweep (the `latency`
/// section of `BENCH_live.json`), runnable standalone at smoke scale for
/// CI; `live` runs it too, alongside the closed-loop sweeps.
pub fn live_latency(scale: Scale) -> String {
    let latency = latency_rows(scale);
    let mut out = render_latency_table(&latency);
    let _ = writeln!(out, "\n{}", write_bench_live(None, Some(&latency), None, None, None, scale));
    out
}

/// `live-drift` — the paper's §4.5 workload-shift scenario (Fig. 11),
/// measured on the live runtime: Houdini is trained on a TATP population
/// skewed to partitions `[0, 2)`, serves one window of matching traffic,
/// then the skew flips to partitions `[2, 4)` — whose per-partition model
/// states the trained models have never seen. With maintenance on,
/// session feedback drives the background thread to rebuild drifted
/// models (interning the previously-dark states with their live counts)
/// and epoch-swap them in, so throughput and prediction accuracy recover
/// mid-window; the frozen arm (`maintenance: false`, the old "suspended
/// while live" behaviour) stays degraded — every shifted request
/// dead-ends its estimate and falls back to lock-all.
pub fn live_drift(scale: Scale) -> String {
    let parts: u32 = 4;
    let half = parts / 2;
    let (w1_requests, w2_requests) = match scale {
        Scale::Quick => (200u64, 500u64),
        Scale::Full => (1_000, 2_500),
    };
    let cfg = |requests: u64| LiveConfig {
        clients_per_partition: 4,
        requests_per_client: requests,
        max_restarts: 2,
        seed: 89,
        commit_flush_us: 200,
        msg_delay_us: 0,
        ..Default::default()
    };
    // Train on the low partitions only: the high partitions' model states
    // are dark.
    let (catalog, workload) = {
        let mut db = Bench::Tatp.database(parts);
        let reg = Bench::Tatp.registry();
        let catalog = reg.catalog();
        let mut gen = tatp::Generator::new(parts, 97).with_hot_partitions(0, half);
        let n = scale.trace_len();
        let mut records = Vec::with_capacity(n);
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = engine::run_offline(&mut db, &reg, &catalog, proc, &args, true)
                .expect("offline drift trace");
            records.push(out.record);
        }
        (catalog, trace::Workload { records })
    };
    let preds = train(&catalog, parts, &workload, &TrainingConfig::default());

    let run_window = |h: &Arc<Houdini>, requests: u64, lo: u32, hi: u32| -> RunMetrics {
        let db = Bench::Tatp.database(parts);
        let reg = Bench::Tatp.registry();
        let gen_seed = derive_seed(101, 0x6E6);
        let make_gen = move |client: u64| {
            Box::new(
                tatp::Generator::for_client(parts, gen_seed, client).with_hot_partitions(lo, hi),
            ) as Box<dyn RequestGenerator + Send>
        };
        let cfg = cfg(requests);
        let (m, _) = engine::run_live(db, reg, h.clone(), &make_gen, &cfg)
            .expect("live drift window must not halt");
        let issued = u64::from(parts * cfg.clients_per_partition) * requests;
        assert_eq!(m.committed + m.user_aborts, issued, "lost transactions in drift window");
        m
    };

    let mut drift_rows: Vec<DriftRow> = Vec::new();
    for (label, maintenance) in [("houdini-maint", true), ("houdini-frozen", false)] {
        // Arc-shared so the same advisor instance (and its learned epochs)
        // serves both measurement windows back to back.
        let h = Arc::new(Houdini::new(
            preds.clone(),
            catalog.clone(),
            parts,
            HoudiniConfig { maintenance, ..Default::default() },
        ));
        // Window 1: traffic matches the training skew (low partitions).
        let m1 = run_window(&h, w1_requests, 0, half);
        // Window 2: the skew flips to the high partitions — the same
        // advisor instance keeps serving, so epochs learned during the
        // window carry over from request to request.
        let m2 = run_window(&h, w2_requests, half, parts);
        drift_rows.push(DriftRow {
            advisor: label,
            phase: "pre-shift",
            workers: parts,
            metrics: m1,
        });
        drift_rows.push(DriftRow {
            advisor: label,
            phase: "post-shift",
            workers: parts,
            metrics: m2,
        });
    }

    let q = |v: Option<f64>| v.map_or_else(|| "    -".into(), |x| format!("{x:5.1}"));
    let mut out = String::from(
        "# Live drift: TATP partition-skew flip (trained on partitions 0-1, shifted to 2-3), 4 workers\n\
         arm             phase       tps     op2%   single-part  distrib  restarts  swaps  feedback  dropped\n",
    );
    for r in &drift_rows {
        let m = &r.metrics;
        let _ = writeln!(
            out,
            "{:<15} {:<10} {:6.0}  {}  {:11}  {:7}  {:8}  {:5}  {:8}  {:7}",
            r.advisor,
            r.phase,
            m.throughput_tps(),
            q(m.overall_op2_pct()),
            m.single_partition,
            m.distributed,
            m.restarts,
            m.model_swaps,
            m.feedback_records,
            m.feedback_dropped,
        );
    }
    // Per-epoch accuracy of the maintenance arm's post-shift window: the
    // recovery trajectory (epoch 0 = trained models degraded by the flip,
    // later epochs = rebuilt models).
    if let Some(maint_post) =
        drift_rows.iter().find(|r| r.advisor == "houdini-maint" && r.phase == "post-shift")
    {
        let _ = writeln!(out, "\nhoudini-maint post-shift per-epoch accuracy:");
        for e in &maint_post.metrics.epoch_accuracy {
            let _ = writeln!(
                out,
                "  epoch {:>3}: {:6} transitions observed, accuracy {}",
                e.epoch,
                e.observed,
                q(e.accuracy().map(|a| a * 100.0)),
            );
        }
    }
    let _ =
        writeln!(out, "\n{}", write_bench_live(None, None, Some(&drift_rows), None, None, scale));
    out
}

/// `live-profile` — the live-runtime counterpart of Fig. 11: per-stage
/// wall-clock attribution (estimation / execution / coordination /
/// queueing / other) for houdini on TATP (single-partition heavy, 1 and
/// 4 workers) and TPC-C (distributed-txn heavy, 4 workers). Runnable
/// standalone at smoke scale for CI; `live` persists the same section
/// from its full scaling sweep.
pub fn live_profile(scale: Scale) -> String {
    let mut rows = Vec::new();
    for workers in [1u32, 4] {
        let cfg = live_config(scale, 71, 150, 0);
        let houdini =
            Arc::new(trained_houdini(Bench::Tatp, workers, scale.trace_len(), true, 0.5, 71));
        rows.push(measure_live(Bench::Tatp, "houdini", workers, &houdini, &cfg, 73));
    }
    let workers = 4u32;
    let cfg = live_config(scale, 79, 150, 60);
    let houdini = Arc::new(trained_houdini(Bench::Tpcc, workers, scale.trace_len(), true, 0.5, 79));
    rows.push(measure_live(Bench::Tpcc, "houdini", workers, &houdini, &cfg, 83));
    let mut out = render_profile_table(&rows);
    let _ = writeln!(out, "\n{}", write_bench_live(None, None, None, Some(&rows), None, scale));
    out
}

/// `check-live-profile` — the CI smoke gate for the fast-path work: runs
/// the 1-worker TATP live profile and fails the process if the
/// coordination share has regressed to the pre-SPSC-lane runtime's level
/// (59.6% at the seed commit, same 1-core host; the ring-lane dispatch
/// holds it near 40%). Median of three runs shrugs off scheduler noise.
/// A gate, not a measurement: it never writes `BENCH_live.json`.
pub fn check_live_profile(scale: Scale) -> String {
    const SEED_COORD_PCT: f64 = 59.6;
    let houdini = Arc::new(trained_houdini(Bench::Tatp, 1, scale.trace_len(), true, 0.5, 71));
    let cfg = live_config(scale, 71, 150, 0);
    let mut shares: Vec<f64> = (0..3)
        .map(|i| {
            let m = measure_once(Bench::Tatp, "houdini", 1, &houdini, &cfg, 73 + i);
            100.0 * m.profile.overall_share(Bucket::Coordination)
        })
        .collect();
    shares.sort_by(f64::total_cmp);
    let median = shares[1];
    assert!(
        median < SEED_COORD_PCT,
        "live fast path regressed: 1-worker TATP coordination share {median:.1}% >= \
         {SEED_COORD_PCT}% (the seed's shared-MPSC level; runs: {shares:?})"
    );
    format!(
        "# check-live-profile: 1-worker TATP coordination share {median:.1}% \
         (gate: < {SEED_COORD_PCT}%; runs {shares:?})\n"
    )
}

/// `check-dist-profile` — the CI smoke gate for the distributed-path
/// work: runs the 2-worker TATP live sweep configuration (the regime that
/// collapsed to ~15.3k tps under per-transaction fragment channels and
/// participant-side flush sleeps) and fails the process if the median
/// throughput of three runs drops back under the committed floor, or if
/// the commit/abort counts drift — outcomes are deterministic per seed,
/// batching and coalescing may only change *timing*. Quick scale also
/// pins the exact counts the committed `BENCH_live.json` rows carry. A
/// gate, not a measurement: it never writes `BENCH_live.json`.
pub fn check_dist_profile(scale: Scale) -> String {
    /// Committed floor (tps): the pre-fragment-lane runtime measured
    /// 15.3k on this configuration; the lane + coalesced-flush runtime
    /// (with the durability wait off the lock-hold path) clears ~50k on
    /// the same host, so the floor splits the two regimes with wide
    /// margin for scheduler noise.
    const DIST_FLOOR_TPS: f64 = 30_000.0;
    /// The quick-scale run's deterministic outcome counts (2 workers × 4
    /// clients × 250 requests, measure seed 73): byte-identical to the
    /// unbatched per-query path and to the committed BENCH rows.
    const QUICK_COMMITTED: u64 = 1_955;
    const QUICK_USER_ABORTS: u64 = 45;
    let houdini = Arc::new(trained_houdini(Bench::Tatp, 2, scale.trace_len(), true, 0.5, 71));
    let cfg = live_config(scale, 71, 250, 0);
    let runs: Vec<RunMetrics> =
        (0..3).map(|_| measure_once(Bench::Tatp, "houdini", 2, &houdini, &cfg, 73)).collect();
    for m in &runs {
        assert_eq!(
            (m.committed, m.user_aborts),
            (runs[0].committed, runs[0].user_aborts),
            "distributed outcomes must be deterministic per seed"
        );
        if scale == Scale::Quick {
            assert_eq!(
                (m.committed, m.user_aborts),
                (QUICK_COMMITTED, QUICK_USER_ABORTS),
                "2-worker TATP quick counts drifted from the committed baseline"
            );
        }
    }
    let mut tps: Vec<f64> = runs.iter().map(RunMetrics::throughput_tps).collect();
    tps.sort_by(f64::total_cmp);
    let median = tps[1];
    assert!(
        median > DIST_FLOOR_TPS,
        "live distributed path regressed: 2-worker TATP {median:.0} tps <= \
         {DIST_FLOOR_TPS:.0} floor (runs: {tps:?})"
    );
    let coalesced: u64 = runs.iter().map(|m| m.flushes_coalesced).sum();
    let p = &runs[0].profile;
    format!(
        "# check-dist-profile: 2-worker TATP {median:.0} tps \
         (gate: > {DIST_FLOOR_TPS:.0}; runs {:?}; committed {} / aborts {} per run; \
         {coalesced} coalesced flushes over 3 runs)\n\
         # run 0 attribution: est {:.1}% exec {:.1}% coord {:.1}% \
         (lock {:.1}% / 2pc {:.1}% / flush {:.1}%) queue {:.1}% other {:.1}%, \
         mean call {:.1} us\n",
        tps.iter().map(|t| t.round()).collect::<Vec<_>>(),
        runs[0].committed,
        runs[0].user_aborts,
        100.0 * p.overall_share(Bucket::Estimation),
        100.0 * p.overall_share(Bucket::Execution),
        100.0 * p.overall_share(Bucket::Coordination),
        100.0 * p.overall_coord_share(CoordSub::LockWait),
        100.0 * p.overall_coord_share(CoordSub::TwoPc),
        100.0 * p.overall_coord_share(CoordSub::Flush),
        100.0 * p.overall_share(Bucket::Queueing),
        100.0 * p.overall_share(Bucket::Other),
        if p.total_txns() > 0 { p.grand_total_us() / p.total_txns() as f64 } else { 0.0 },
    )
}

/// Worker count (= partitions) of the durability overhead pair — the same
/// configuration as the distributed smoke gate, so the two gates price the
/// same regime.
const DURABILITY_PARTS: u32 = 2;

/// Interleaved (log, base) rounds per durability arm pair. Seven rounds
/// give each arm enough draws that its best round — the estimator's
/// input — is a low-contamination sample even on a noisy host.
const DURABILITY_ROUNDS: usize = 7;

/// Scratch root for one durability arm pair. `"ram"` prefers a tmpfs
/// mount (`/dev/shm`) when the host has one: `fsync` completes in memory
/// there, so the measured overhead is the logging *subsystem* —
/// serialization, group accounting, flusher scheduling, acks held for the
/// covering flush — with the device latency controlled out. `"disk"` is
/// the OS temp dir (a real block device on the reference container): the
/// same machinery plus the true fsync latency entering every writer's
/// closed-loop ack.
fn durability_log_root(device: &str) -> std::path::PathBuf {
    let base = if device == "ram" && std::path::Path::new("/dev/shm").is_dir() {
        std::path::PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    base.join(format!("bench-durability-{device}-{}", std::process::id()))
}

/// Measures one durability arm pair: quick-scale TATP with real command
/// logging (`wal::FileDevice` on the given scratch device, default
/// group-commit cadence — one fsync per flusher window) against the
/// identical configuration with durability off. Both arms run with the
/// *modeled* commit-flush sleep at zero, so the baseline pays no stand-in
/// flush cost and the overhead is the real logging cost and nothing else.
/// Afterwards the last logging round's on-disk state is recovered with
/// [`LiveRuntime::recover`] to price recovery.
///
/// The overhead estimate is the ratio of the two arms' *best* rounds.
/// Host noise on a small shared box is one-sided — interference only
/// ever slows a run down — so each arm's best of the five interleaved
/// rounds is its least-contaminated throughput estimate, and the ratio
/// of bests prices logging under matched host conditions. The reported
/// tps columns are per-arm medians (the typical rate, noise included),
/// so `overhead_pct` can differ slightly from the ratio of the printed
/// columns — it is the more robust of the two estimates.
fn durability_row(scale: Scale, device: &'static str, houdini: &Arc<Houdini>) -> DurabilityRow {
    let parts = DURABILITY_PARTS;
    let mut cfg = live_config(scale, 71, 250, 0);
    cfg.commit_flush_us = 0;
    // Group commit is a throughput mechanism, not a latency one: an ack
    // waits for the fsync covering its group, so a shallow closed loop
    // (the scaling sweep's 4 clients/partition) serializes on the device
    // and measures fsync *latency*, not logging *cost*. Deepen the loop
    // so the flusher always has the next group forming while it syncs the
    // current one — the regime the <10% acceptance bar is defined over.
    cfg.clients_per_partition = 16;
    cfg.requests_per_client *= 4;
    let root = durability_log_root(device);
    let (mut log_runs, mut base_runs) = (Vec::new(), Vec::new());
    for round in 0..DURABILITY_ROUNDS {
        let dir = root.join(format!("round-{round}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut log_cfg = cfg.clone();
        log_cfg.durability = Some(DurabilityConfig::new(&dir));
        log_runs.push(measure_once(Bench::Tatp, "houdini+log", parts, houdini, &log_cfg, 73));
        base_runs.push(measure_once(Bench::Tatp, "houdini", parts, houdini, &cfg, 73));
    }
    // Outcomes are deterministic per seed; logging must not change them.
    for (l, b) in log_runs.iter().zip(&base_runs) {
        assert_eq!(
            (l.committed, l.user_aborts),
            (b.committed, b.user_aborts),
            "command logging changed transaction outcomes"
        );
    }
    // Recover the last round's state: the log is the only source (no
    // snapshot was taken), so `replayed` counts its committed writers.
    let rec_cfg = LiveConfig {
        durability: Some(DurabilityConfig::new(
            root.join(format!("round-{}", DURABILITY_ROUNDS - 1)),
        )),
        ..cfg.clone()
    };
    let (rt, report) = LiveRuntime::recover(
        Bench::Tatp.database(parts),
        Bench::Tatp.registry(),
        Arc::clone(houdini),
        rec_cfg,
    );
    drop(rt.shutdown());
    let _ = std::fs::remove_dir_all(&root);
    let best =
        |runs: &[RunMetrics]| runs.iter().map(RunMetrics::throughput_tps).fold(0.0, f64::max);
    let ratio = best(&log_runs) / best(&base_runs);
    let log_m = median_run(log_runs);
    let base_m = median_run(base_runs);
    DurabilityRow {
        bench: Bench::Tatp.name(),
        advisor: "houdini",
        device,
        workers: parts,
        baseline_tps: base_m.throughput_tps(),
        logging_tps: log_m.throughput_tps(),
        overhead_pct: 100.0 * (1.0 - ratio),
        log_records: log_m.log_records,
        log_bytes: log_m.log_bytes_written,
        snapshots: log_m.snapshots_taken,
        recovery_ms: report.recovery_ms,
        replayed: report.replayed,
    }
}

/// Measures the `durability` section: the command-logging arm pair on
/// both scratch devices — `"ram"` (subsystem overhead with device latency
/// controlled out) and `"disk"` (the same plus real fsync latency; on the
/// reference 1-core container this is dominated by the fsync wait
/// entering every writer's closed-loop ack, not by logging machinery).
pub fn durability_rows(scale: Scale) -> Vec<DurabilityRow> {
    let parts = DURABILITY_PARTS;
    let houdini = Arc::new(trained_houdini(Bench::Tatp, parts, scale.trace_len(), true, 0.5, 71));
    vec![durability_row(scale, "ram", &houdini), durability_row(scale, "disk", &houdini)]
}

/// Renders the human-readable durability table shared by `live-durability`
/// and `check-durability`.
fn render_durability_table(rows: &[DurabilityRow]) -> String {
    let mut out = String::from(
        "# Durability: command-logging overhead (best of 7 interleaved rounds per arm) and recovery cost\n\
         bench   device  workers  base-tps  log-tps  overhead%  log-recs  log-bytes  snapshots  recovery-ms  replayed\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<7} {:<6} {:7}  {:8.0}  {:7.0}  {:9.2}  {:8}  {:9}  {:9}  {:11.2}  {:8}",
            r.bench,
            r.device,
            r.workers,
            r.baseline_tps,
            r.logging_tps,
            r.overhead_pct,
            r.log_records,
            r.log_bytes,
            r.snapshots,
            r.recovery_ms,
            r.replayed,
        );
    }
    out
}

/// `live-durability` — measures the command-logging throughput overhead
/// and the crash-recovery cost, and writes the `durability` section of
/// `BENCH_live.json` (EXPERIMENTS.md §Durability).
pub fn live_durability(scale: Scale) -> String {
    let rows = durability_rows(scale);
    let mut out = render_durability_table(&rows);
    let _ = writeln!(out, "\n{}", write_bench_live(None, None, None, None, Some(&rows), scale));
    out
}

/// `check-durability` — the CI smoke gate for the durability subsystem's
/// performance promise: quick-scale TATP with real `FileDevice` command
/// logging must stay within 10% of the no-logging rate (ISSUE 10's
/// acceptance bar; group commit riding the flusher's accumulation window
/// is what makes this hold — a per-commit fsync would fail by an order of
/// magnitude). The gate runs the `"ram"` arm pair only: it prices the
/// logging subsystem itself — serialization, group accounting, flusher
/// scheduling, acks held for the covering flush — with the scratch
/// device's fsync latency controlled out, so it regresses on *code*, not
/// on the CI host's disk. The `"disk"` pair is recorded (not gated) by
/// `live-durability`. Also asserts the logging run actually logged and
/// that recovery replayed its committed writers. A gate, not a
/// measurement: it never writes `BENCH_live.json`.
pub fn check_durability(scale: Scale) -> String {
    const MAX_OVERHEAD_PCT: f64 = 10.0;
    let parts = DURABILITY_PARTS;
    let houdini = Arc::new(trained_houdini(Bench::Tatp, parts, scale.trace_len(), true, 0.5, 71));
    let r = durability_row(scale, "ram", &houdini);
    assert!(
        r.overhead_pct < MAX_OVERHEAD_PCT,
        "command logging regressed: {:.2}% throughput overhead >= {MAX_OVERHEAD_PCT}% \
         ({:.0} tps logging vs {:.0} tps baseline)",
        r.overhead_pct,
        r.logging_tps,
        r.baseline_tps,
    );
    assert!(r.log_records > 0, "logging arm wrote no log records");
    assert!(r.replayed > 0, "recovery replayed nothing from the logging arm's state");
    format!(
        "# check-durability: 2-worker TATP logging overhead {:.2}% on {} \
         (gate: < {MAX_OVERHEAD_PCT}%; {:.0} tps logging vs {:.0} tps baseline; \
         {} records / {} bytes logged; recovery replayed {} in {:.2} ms)\n",
        r.overhead_pct,
        r.device,
        r.logging_tps,
        r.baseline_tps,
        r.log_records,
        r.log_bytes,
        r.replayed,
        r.recovery_ms,
    )
}

/// Runs one experiment by id (`fig3`, `table3`, ...; `all` runs everything).
pub fn run_experiment(id: &str, scale: Scale) -> String {
    match id {
        "fig3" => fig3(scale),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "table3" => table3(scale),
        "fig11" => fig11(scale),
        "table4" => table4(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "live" => live(scale),
        "live-latency" => live_latency(scale),
        "live-drift" => live_drift(scale),
        "live-profile" => live_profile(scale),
        "live-durability" => live_durability(scale),
        "check-live-profile" => check_live_profile(scale),
        "check-dist-profile" => check_dist_profile(scale),
        "check-durability" => check_durability(scale),
        "all" => {
            let ids = [
                "fig3",
                "fig4",
                "fig5",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "table3",
                "fig11",
                "table4",
                "fig12",
                "fig13",
                "live",
                "live-drift",
                "live-profile",
                "live-durability",
            ];
            ids.iter().map(|i| run_experiment(i, scale) + "\n").collect()
        }
        other => format!("unknown experiment id: {other}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_live_sections_carry_forward() {
        let row = LiveRow {
            bench: "TATP",
            advisor: "houdini",
            workers: 2,
            metrics: RunMetrics::default(),
        };
        let first = bench_live_json(
            Some(std::slice::from_ref(&row)),
            None,
            None,
            None,
            None,
            Scale::Quick,
            None,
        );
        assert!(first.contains("\"schema\": 7"));
        assert!(first.contains("\"host\": {"), "host metadata missing: {first}");
        assert!(first.contains("\"cores\": "));
        assert!(first.contains("\"rows\": [\n"));
        assert!(
            first.contains("\"flushes_total\": 0, \"flushes_coalesced\": 0"),
            "rows must carry the coalesced-flush counters: {first}"
        );
        assert!(first.contains("\"latency\": []"));
        assert!(first.contains("\"drift\": []"));
        assert!(first.contains("\"profile\": []"));
        assert!(first.contains("\"durability\": []"));
        // Writing the drift section preserves the measured rows verbatim.
        let drift = DriftRow {
            advisor: "houdini-maint",
            phase: "post-shift",
            workers: 2,
            metrics: RunMetrics::default(),
        };
        // Writing the durability section preserves the rows.
        let durability = DurabilityRow {
            bench: "TATP",
            advisor: "houdini",
            device: "ram",
            workers: 2,
            baseline_tps: 50_000.0,
            logging_tps: 48_500.0,
            overhead_pct: 3.0,
            log_records: 1_200,
            log_bytes: 40_000,
            snapshots: 0,
            recovery_ms: 12.5,
            replayed: 1_200,
        };
        let with_durability = bench_live_json(
            None,
            None,
            None,
            None,
            Some(std::slice::from_ref(&durability)),
            Scale::Quick,
            Some(&first),
        );
        assert!(
            with_durability.contains("\"overhead_pct\": 3.00")
                && with_durability.contains("\"recovery_ms\": 12.50"),
            "durability section missing: {with_durability}"
        );
        assert!(
            with_durability.contains("\"advisor\": \"houdini\""),
            "rows lost: {with_durability}"
        );
        let second = bench_live_json(
            None,
            None,
            Some(std::slice::from_ref(&drift)),
            None,
            None,
            Scale::Quick,
            Some(&with_durability),
        );
        assert!(second.contains("\"advisor\": \"houdini\""), "rows lost: {second}");
        assert!(second.contains("\"advisor\": \"houdini-maint\""));
        assert!(second.contains("\"overhead_pct\": 3.00"), "durability lost: {second}");
        // The open-loop latency section preserves both of the others.
        let lat = LatencyRow {
            bench: "TATP",
            advisor: "houdini",
            workers: 4,
            offered_tps: 1000.0,
            achieved_tps: 990.0,
            p50_ms: Some(0.5),
            p95_ms: Some(2.0),
            p99_ms: None,
            committed: 500,
            user_aborts: 1,
        };
        let third = bench_live_json(
            None,
            Some(std::slice::from_ref(&lat)),
            None,
            None,
            None,
            Scale::Quick,
            Some(&second),
        );
        assert!(third.contains("\"offered_tps\": 1000.0"), "latency missing: {third}");
        assert!(third.contains("\"advisor\": \"houdini\""), "rows lost: {third}");
        assert!(third.contains("\"houdini-maint\""), "drift lost: {third}");
        // The profile section renders per-stage shares and carries the
        // other three sections forward.
        let mut prof_metrics = RunMetrics::default();
        prof_metrics.profile.add(0, Bucket::Execution, 75.0);
        prof_metrics.profile.add(0, Bucket::Coordination, 25.0);
        prof_metrics.profile.add_coord(0, CoordSub::LockWait, 5.0);
        prof_metrics.profile.add_coord(0, CoordSub::TwoPc, 15.0);
        prof_metrics.profile.add_coord(0, CoordSub::Flush, 5.0);
        prof_metrics.profile.finish_txn(0);
        let prof = LiveRow { bench: "TATP", advisor: "houdini", workers: 4, metrics: prof_metrics };
        let fourth = bench_live_json(
            None,
            None,
            None,
            Some(std::slice::from_ref(&prof)),
            None,
            Scale::Quick,
            Some(&third),
        );
        assert!(fourth.contains("\"exec_pct\": 75.00"), "profile missing: {fourth}");
        assert!(
            fourth.contains("\"lock_pct\": 5.00")
                && fourth.contains("\"twopc_pct\": 15.00")
                && fourth.contains("\"flush_pct\": 5.00"),
            "profile must carry the Coordination sub-bucket split: {fourth}"
        );
        assert!(fourth.contains("\"offered_tps\": 1000.0"), "latency lost: {fourth}");
        assert!(fourth.contains("\"houdini-maint\""), "drift lost: {fourth}");
        // And re-writing rows preserves latency + drift + profile.
        let fifth = bench_live_json(
            Some(std::slice::from_ref(&row)),
            None,
            None,
            None,
            None,
            Scale::Quick,
            Some(&fourth),
        );
        assert!(fifth.contains("\"offered_tps\": 1000.0"), "latency lost: {fifth}");
        assert!(fifth.contains("\"houdini-maint\""), "drift lost: {fifth}");
        assert!(fifth.contains("\"exec_pct\": 75.00"), "profile lost: {fifth}");
        assert!(fifth.contains("\"overhead_pct\": 3.00"), "durability lost: {fifth}");
    }
}
