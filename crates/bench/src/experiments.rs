//! One function per paper artifact (tables and figures). Each returns the
//! formatted rows it prints, so the `experiments` binary and EXPERIMENTS.md
//! stay in sync.

use crate::setup::{
    collect_trace, new_order_generator, run_live_bench, run_sim, sim_config, trained_houdini,
    Scale,
};
use common::Value;
use engine::baselines::{AssumeDistributed, AssumeSinglePartition, Oracle};
use engine::{Bucket, CostModel, LiveConfig, Simulation, TxnAdvisor};
use houdini::{
    evaluate_accuracy, train, AccuracyReport, CatalogRule, Houdini, HoudiniConfig, ModelSet,
    TrainingConfig,
};
use mapping::ParamSource;
use markov::{estimate_path, to_dot, EstimateConfig, QueryKind};
use std::fmt::Write as _;
use trace::TraceRecord;
use workloads::Bench;

/// Cluster sizes of Figs. 3 and 12.
pub const CLUSTER_SIZES: [u32; 5] = [4, 8, 16, 32, 64];

/// Table 4 procedure letters, keyed by (benchmark, registry index).
pub fn proc_letter(bench: Bench, proc: usize) -> char {
    let base = match bench {
        Bench::Tatp => b'A',
        Bench::Tpcc => b'H',
        Bench::AuctionMark => b'M',
    };
    (base + proc as u8) as char
}

fn new_order_trace(parts: u32, n: usize, seed: u64) -> (engine::Catalog, trace::Workload) {
    let mut db = Bench::Tpcc.database(parts);
    let reg = Bench::Tpcc.registry();
    let catalog = reg.catalog();
    let mut gen = new_order_generator(parts, seed);
    use engine::RequestGenerator;
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 8);
        let out = engine::run_offline(&mut db, &reg, &catalog, proc, &args, true)
            .expect("offline NewOrder");
        records.push(out.record);
    }
    (catalog, trace::Workload { records })
}

/// Fig. 3 — NewOrder throughput vs partitions under the three §2.1
/// execution strategies.
pub fn fig3(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Fig. 3: NewOrder throughput (txn/s) vs partitions\n\
         parts  proper-selection  assume-single-partition  assume-distributed"
    );
    for parts in CLUSTER_SIZES {
        let mut row = format!("{parts:5}");
        for advisor_id in 0..3 {
            let tps = {
                let mut db = Bench::Tpcc.database(parts);
                let reg = Bench::Tpcc.registry();
                let mut gen = new_order_generator(parts, 11);
                let cfg = sim_config(parts, scale, 17);
                let mut oracle;
                let mut asp;
                let mut adist;
                let advisor: &mut dyn TxnAdvisor = match advisor_id {
                    0 => {
                        oracle = Oracle::new();
                        &mut oracle
                    }
                    1 => {
                        asp = AssumeSinglePartition::new();
                        &mut asp
                    }
                    _ => {
                        adist = AssumeDistributed::new();
                        &mut adist
                    }
                };
                let sim =
                    Simulation::new(&mut db, &reg, advisor, &mut gen, CostModel::default(), cfg);
                let (m, _) = sim.run().expect("fig3 sim");
                m.throughput_tps()
            };
            let _ = write!(row, "  {tps:16.0}");
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Fig. 4 — the global NewOrder Markov model for a 2-partition database
/// (DOT plus structural stats).
pub fn fig4() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let states = model.len();
    let edges: usize = model.vertices().iter().map(|v| v.edges.len()).sum();
    let mut out = format!(
        "# Fig. 4: global NewOrder Markov model, 2 partitions\n\
         states = {states} (incl. begin/commit/abort), edges = {edges}\n"
    );
    let _ = writeln!(
        out,
        "begin successors = {} (one GetWarehouse state per partition)",
        model.vertex(model.begin()).edges.len()
    );
    out.push_str(&to_dot(&model, "NewOrder"));
    out
}

/// Fig. 5 — the probability table of a first GetWarehouse state.
pub fn fig5() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    // Find GetWarehouse counter 0 at partition 0 with empty previous.
    let v = model
        .vertices()
        .iter()
        .find(|v| {
            v.name == "GetWarehouse"
                && v.key.counter == 0
                && v.key.partitions == common::PartitionSet::single(0)
        })
        .expect("GetWarehouse state");
    let mut out = String::from("# Fig. 5: probability table of GetWarehouse (partition 0)\n");
    let _ = writeln!(out, "Single-Partitioned: {:.2}", v.table.single_partition);
    let _ = writeln!(out, "Abort:              {:.2}", v.table.abort);
    let _ = writeln!(out, "partition  read  write  finish");
    for (p, pp) in v.table.partitions.iter().enumerate() {
        let _ = writeln!(out, "{p:9}  {:.2}  {:.2}   {:.2}", pp.read, pp.write, pp.finish);
    }
    out
}

/// Fig. 7 — the NewOrder parameter mapping.
pub fn fig7() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let records = wl.for_proc(1);
    let mapping = mapping::build_mapping(&records, &mapping::MappingConfig::default());
    let mut out = String::from("# Fig. 7: NewOrder parameter mapping\n");
    let proc = catalog.proc(1);
    for ((q, j), m) in mapping.entries() {
        let src = match m.source {
            ParamSource::Scalar(k) => format!("proc param {k}"),
            ParamSource::ArrayElement(k) => format!("proc param {k}[n]"),
        };
        let _ = writeln!(
            out,
            "{}.param[{j}] <- {src}  (coefficient {:.2})",
            proc.query(q).name,
            m.coefficient
        );
    }
    out
}

/// Fig. 8 — the initial execution-path estimate for one NewOrder request.
pub fn fig8() -> String {
    let (catalog, wl) = new_order_trace(2, 2_000, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let mapping = mapping::build_mapping(&records, &mapping::MappingConfig::default());
    // The paper's Fig. 8 example: w_id=0, i_ids=[1001,1002], i_w_ids=[0,1].
    let args = vec![
        Value::Int(0),
        Value::Int(777_000),
        Value::Int(1),
        Value::Array(vec![Value::Int(101), Value::Int(102)]),
        Value::Array(vec![Value::Int(0), Value::Int(1)]),
        Value::Array(vec![Value::Int(2), Value::Int(7)]),
    ];
    let rule = CatalogRule::new(&catalog, 1, 2);
    let est = estimate_path(&model, &rule, &mapping, &args, &EstimateConfig::default());
    let mut out = String::from(
        "# Fig. 8: initial path estimate for NewOrder(w_id=0, i_w_ids=[0,1])\n",
    );
    for &v in &est.vertices {
        let vx = model.vertex(v);
        match vx.key.kind {
            QueryKind::Query(_) => {
                let _ = writeln!(
                    out,
                    "  {} counter={} partitions={} previous={}",
                    vx.name, vx.key.counter, vx.key.partitions, vx.key.previous
                );
            }
            _ => {
                let _ = writeln!(out, "  [{}]", vx.name);
            }
        }
    }
    let _ = writeln!(out, "confidence = {:.3}", est.confidence);
    let _ = writeln!(out, "touched = {} (base = {:?})", est.touched, est.best_base());
    let _ = writeln!(out, "abort probability = {:.3}", est.abort_prob);
    out
}

/// Fig. 9 — partitioned NewOrder models and their decision tree.
pub fn fig9() -> String {
    let (catalog, wl) = new_order_trace(2, 3_000, 4);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, 2, &wl, &cfg);
    let pred = &preds[1];
    let mut out = String::from("# Fig. 9: partitioned NewOrder models\n");
    match &pred.models {
        ModelSet::Global { model, .. } => {
            let _ = writeln!(
                out,
                "clustering did not beat the global model on this trace: {} states",
                model.len()
            );
        }
        ModelSet::Partitioned { selected, schema, models, tree, .. } => {
            let feats: Vec<String> = selected
                .iter()
                .map(|&i| format!("{}(param {})", schema[i].category.label(), schema[i].param))
                .collect();
            let _ = writeln!(out, "selected features: {feats:?}");
            let _ = writeln!(out, "decision tree: {} splits, depth {}", tree.splits, tree.depth());
            for (c, m) in models.iter().enumerate() {
                let _ = writeln!(out, "cluster {c}: {} states", m.len());
            }
            let total: usize = models.iter().map(markov::MarkovModel::len).sum();
            let (catalog2, wl2) = new_order_trace(2, 3_000, 4);
            let resolver = engine::CatalogResolver::new(&catalog2, 2);
            let global = markov::build_model(1, &wl2.for_proc(1), &resolver);
            let _ = writeln!(
                out,
                "global model {} states vs {} clustered states across {} models \
                 (each cluster model is simpler than the global one)",
                global.len(),
                total,
                models.len()
            );
        }
    }
    out
}

/// Fig. 10 — example models from each benchmark at 4 partitions.
pub fn fig10() -> String {
    let mut out = String::from("# Fig. 10: example Markov models, 4 partitions\n");
    let cases: [(Bench, &str); 3] = [
        (Bench::Tatp, "InsertCallFwrd"),
        (Bench::Tpcc, "Payment"),
        (Bench::AuctionMark, "GetUserInfo"),
    ];
    for (bench, proc_name) in cases {
        let (catalog, wl) = collect_trace(bench, 4, 3_000, 10);
        let proc = catalog.proc_id(proc_name).expect("proc exists");
        let resolver = engine::CatalogResolver::new(&catalog, 4);
        let records = wl.for_proc(proc);
        let model = markov::build_model(proc, &records, &resolver);
        let _ = writeln!(
            out,
            "{} {}: {} states, begin out-degree {}",
            bench.name(),
            proc_name,
            model.len(),
            model.vertex(model.begin()).edges.len()
        );
        // First-query states show the access pattern (broadcast vs single).
        for e in &model.vertex(model.begin()).edges {
            let v = model.vertex(e.to);
            let _ = writeln!(
                out,
                "  begin -> {} partitions={} (p={:.2})",
                v.name, v.key.partitions, e.prob
            );
        }
    }
    out
}

/// Table 3 — global vs partitioned model accuracy per optimization.
pub fn table3(scale: Scale) -> String {
    let parts = 16;
    let n = scale.trace_len() * 2;
    let mut out = String::from(
        "# Table 3: model accuracy (%), 16 partitions, train on first half / test on second\n\
         benchmark    variant      OP1    OP2    OP3    OP4    Total\n",
    );
    for bench in Bench::ALL {
        let (catalog, wl) = collect_trace(bench, parts, n, 23);
        let (train_recs, test_recs) = wl.records.split_at(n / 2);
        let train_wl = trace::Workload { records: train_recs.to_vec() };
        for partitioned in [false, true] {
            let cfg = TrainingConfig { partitioned, ..Default::default() };
            let preds = train(&catalog, parts, &train_wl, &cfg);
            let mut agg = AccuracyReport::default();
            for (proc, pred) in preds.iter().enumerate() {
                let test: Vec<&TraceRecord> =
                    test_recs.iter().filter(|r| r.proc == proc as u32).collect();
                let rep =
                    evaluate_accuracy(pred, &catalog, parts, proc as u32, &test, 0.5);
                agg.merge(&rep);
            }
            let _ = writeln!(
                out,
                "{:<12} {:<11} {:5.1}  {:5.1}  {:5.1}  {:5.1}  {:5.1}",
                bench.name(),
                if partitioned { "partitioned" } else { "global" },
                agg.op1_pct(),
                agg.op2_pct(),
                agg.op3_pct(),
                agg.op4_pct(),
                agg.total_pct()
            );
        }
    }
    out
}

/// Fig. 11 — per-procedure transaction-time breakdown under Houdini
/// (partitioned models, 16 partitions).
pub fn fig11(scale: Scale) -> String {
    let parts = 16;
    let mut out = String::from(
        "# Fig. 11: % of transaction time per bucket (partitioned models, 16 partitions)\n\
         proc                      estim   exec   plan  coord  other\n",
    );
    for bench in Bench::ALL {
        let mut houdini =
            trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 31);
        let (_, profiler) = run_sim(bench, parts, &mut houdini, scale, 37);
        let catalog = bench.registry().catalog();
        for proc in profiler.procs() {
            let name = &catalog.proc(proc).name;
            let letter = proc_letter(bench, proc as usize);
            let _ = writeln!(
                out,
                "{letter} {:<22}  {:5.1}  {:5.1}  {:5.1}  {:5.1}  {:5.1}",
                name,
                100.0 * profiler.share(proc, Bucket::Estimation),
                100.0 * profiler.share(proc, Bucket::Execution),
                100.0 * profiler.share(proc, Bucket::Planning),
                100.0 * profiler.share(proc, Bucket::Coordination),
                100.0 * profiler.share(proc, Bucket::Other),
            );
        }
        let _ = writeln!(
            out,
            "{} overall estimation share: {:.1}%",
            bench.name(),
            100.0 * profiler.overall_share(Bucket::Estimation)
        );
    }
    out
}

/// Table 4 — % of transactions where each optimization was enabled at run
/// time, plus the mean estimation time per transaction.
pub fn table4(scale: Scale) -> String {
    let parts = 16;
    let mut out = String::from(
        "# Table 4: runtime optimization success (%, partitioned models, 16 partitions)\n\
         proc                       OP1     OP2     OP3     OP4   est(ms)\n",
    );
    for bench in Bench::ALL {
        let mut houdini =
            trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 41);
        let (metrics, profiler) = run_sim(bench, parts, &mut houdini, scale, 43);
        let catalog = bench.registry().catalog();
        let mut procs: Vec<u32> = metrics.ops.keys().copied().collect();
        procs.sort_unstable();
        for proc in procs {
            let ops = &metrics.ops[&proc];
            let letter = proc_letter(bench, proc as usize);
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:6.1}"),
                None => "     -".to_string(),
            };
            let est_ms = profiler.mean_us(proc, Bucket::Estimation) / 1000.0;
            let _ = writeln!(
                out,
                "{letter} {:<22} {}  {}  {}  {}  {:7.3}",
                catalog.proc(proc).name,
                fmt(ops.op1_pct()),
                fmt(ops.op2_pct()),
                fmt(ops.op3_pct()),
                fmt(ops.op4_pct()),
                est_ms
            );
        }
    }
    out
}

/// Fig. 12 — throughput vs partitions: Houdini-partitioned, Houdini-global,
/// assume-single-partition, for all three benchmarks.
pub fn fig12(scale: Scale) -> String {
    let mut out = String::from(
        "# Fig. 12: throughput (txn/s) vs partitions\n\
         bench        parts  houdini-part  houdini-global  assume-single-part\n",
    );
    for bench in Bench::ALL {
        for parts in CLUSTER_SIZES {
            let tps_part = {
                let mut h = trained_houdini(bench, parts, scale.trace_len(), true, 0.5, 51);
                run_sim(bench, parts, &mut h, scale, 53).0.throughput_tps()
            };
            let tps_glob = {
                let mut h = trained_houdini(bench, parts, scale.trace_len(), false, 0.5, 51);
                run_sim(bench, parts, &mut h, scale, 53).0.throughput_tps()
            };
            let tps_asp = {
                let mut a = AssumeSinglePartition::new();
                run_sim(bench, parts, &mut a, scale, 53).0.throughput_tps()
            };
            let _ = writeln!(
                out,
                "{:<12} {parts:5}  {tps_part:12.0}  {tps_glob:14.0}  {tps_asp:19.0}",
                bench.name()
            );
        }
    }
    out
}

/// Fig. 13 — throughput vs the confidence-coefficient threshold.
pub fn fig13(scale: Scale) -> String {
    let parts = 16;
    let thresholds = [0.0, 0.06, 0.1, 0.2, 0.3, 0.4, 0.5, 0.66, 0.8, 0.9, 1.0];
    let mut out = String::from(
        "# Fig. 13: throughput (txn/s) vs confidence threshold, 16 partitions\n\
         threshold     TATP    TPC-C  AuctionMark\n",
    );
    // Train once per benchmark; rebuild the advisor per threshold.
    let mut rows = vec![String::new(); thresholds.len()];
    for (ti, &t) in thresholds.iter().enumerate() {
        rows[ti] = format!("{t:9.2}");
    }
    for bench in Bench::ALL {
        let (catalog, wl) = collect_trace(bench, parts, scale.trace_len(), 61);
        let cfg = TrainingConfig::default();
        let preds = train(&catalog, parts, &wl, &cfg);
        for (ti, &t) in thresholds.iter().enumerate() {
            let hcfg = HoudiniConfig { threshold: t, ..Default::default() };
            let mut h = Houdini::new(preds.clone(), catalog.clone(), parts, hcfg);
            let (m, _) = run_sim(bench, parts, &mut h, scale, 67);
            let _ = write!(rows[ti], "  {:7.0}", m.throughput_tps());
        }
    }
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}

/// Worker counts of the live wall-clock scaling experiment.
pub const LIVE_WORKER_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// One measured live-runtime configuration: a row of the `live` tables and
/// of `BENCH_live.json`.
pub struct LiveRow {
    /// Benchmark name (`TATP`, `TPC-C`).
    pub bench: &'static str,
    /// Advisor label (`houdini`, `houdini-no-op4`, `asp`, `lock-all`).
    pub advisor: &'static str,
    /// Worker threads (= partitions).
    pub workers: u32,
    /// The measured run.
    pub metrics: engine::RunMetrics,
}

fn live_config(scale: Scale, seed: u64, requests_quick: u64, msg_delay_us: u64) -> LiveConfig {
    LiveConfig {
        clients_per_partition: 4,
        requests_per_client: match scale {
            Scale::Quick => requests_quick,
            Scale::Full => 2_000,
        },
        max_restarts: 2,
        seed,
        commit_flush_us: 200,
        msg_delay_us,
    }
}

fn measure_live<A: engine::LiveAdvisor>(
    bench: Bench,
    label: &'static str,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    seed: u64,
) -> LiveRow {
    let m = measure_once(bench, label, parts, advisor, cfg, seed);
    LiveRow { bench: bench.name(), advisor: label, workers: parts, metrics: m }
}

/// Runs the measurement once, asserting the conservation invariant shared
/// with the deterministic simulator: every issued request either commits
/// or user-aborts — speculative cascades are retried transparently and
/// must not lose or duplicate requests.
fn measure_once<A: engine::LiveAdvisor>(
    bench: Bench,
    label: &str,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    seed: u64,
) -> engine::RunMetrics {
    let issued =
        u64::from(parts) * u64::from(cfg.clients_per_partition) * cfg.requests_per_client;
    let m = run_live_bench(bench, parts, advisor, cfg, seed);
    assert_eq!(
        m.committed + m.user_aborts,
        issued,
        "lost transactions ({} {label} @ {parts}w)",
        bench.name()
    );
    m
}

/// The run with median throughput (whole-metrics, so counters stay
/// internally consistent).
fn median_run(mut runs: Vec<engine::RunMetrics>) -> engine::RunMetrics {
    runs.sort_by(|a, b| a.throughput_tps().total_cmp(&b.throughput_tps()));
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

/// Measures an A/B pair of advisors with *interleaved* rounds (A, B, A, B,
/// …) and per-arm medians. Wall-clock noise on small shared hosts is
/// ±2-3% per run and drifts slowly — larger than the effects the OP4
/// ablation measures — so back-to-back interleaving turns the drift into
/// paired noise the medians cancel.
#[allow(clippy::too_many_arguments)]
fn measure_live_pair<A: engine::LiveAdvisor, B: engine::LiveAdvisor>(
    bench: Bench,
    label_a: &'static str,
    label_b: &'static str,
    parts: u32,
    advisor_a: &A,
    advisor_b: &B,
    cfg: &LiveConfig,
    seed: u64,
    rounds: u32,
) -> (LiveRow, LiveRow) {
    let mut runs_a = Vec::new();
    let mut runs_b = Vec::new();
    for _ in 0..rounds.max(1) {
        runs_a.push(measure_once(bench, label_a, parts, advisor_a, cfg, seed));
        runs_b.push(measure_once(bench, label_b, parts, advisor_b, cfg, seed));
    }
    (
        LiveRow {
            bench: bench.name(),
            advisor: label_a,
            workers: parts,
            metrics: median_run(runs_a),
        },
        LiveRow {
            bench: bench.name(),
            advisor: label_b,
            workers: parts,
            metrics: median_run(runs_b),
        },
    )
}

/// Runs every live-runtime measurement: the TATP scaling sweep (Houdini vs
/// the two baselines) and the TPC-C OP4 ablation sweep (Houdini with early
/// prepare + speculation on vs off, plus lock-all).
pub fn live_rows(scale: Scale) -> Vec<LiveRow> {
    let mut rows = Vec::new();
    // TATP: the worker-count scaling sweep, directly comparable with the
    // PR 2 run log (no modeled message latency; scaling comes from
    // overlapping commit flushes).
    for parts in LIVE_WORKER_COUNTS {
        let cfg = live_config(scale, 71, 250, 0);
        let houdini = trained_houdini(Bench::Tatp, parts, scale.trace_len(), true, 0.5, 71);
        rows.push(measure_live(Bench::Tatp, "houdini", parts, &houdini, &cfg, 73));
        let asp = AssumeSinglePartition::new();
        rows.push(measure_live(Bench::Tatp, "asp", parts, &asp, &cfg, 73));
        let adist = AssumeDistributed::new();
        rows.push(measure_live(Bench::Tatp, "lock-all", parts, &adist, &cfg, 73));
    }
    // TPC-C is the distributed-heavy workload that actually exercises OP4:
    // remote NewOrder/Payment hold multi-partition lock sets across the
    // 2PC vote/commit rounds and commit flushes. Message latency is
    // modeled at the simulator's `remote_msg_us` (60 µs one-way) so the
    // lock-hold time OP4 reclaims exists in wall-clock terms, and the
    // ablation pair runs long (1000 requests/client at quick scale) to
    // keep the comparison above scheduler noise on small hosts.
    for parts in LIVE_WORKER_COUNTS {
        let cfg = live_config(scale, 79, 1_000, 60);
        // One trace + training pass serves both ablation arms: the config
        // knob is read only at plan time, never during training.
        let (catalog, workload) = collect_trace(Bench::Tpcc, parts, scale.trace_len(), 79);
        let preds = train(&catalog, parts, &workload, &TrainingConfig::default());
        let op4 = Houdini::new(preds.clone(), catalog.clone(), parts, HoudiniConfig::default());
        let no_op4 = Houdini::new(
            preds,
            catalog,
            parts,
            HoudiniConfig { early_prepare: false, ..Default::default() },
        );
        let (row_on, row_off) = measure_live_pair(
            Bench::Tpcc,
            "houdini",
            "houdini-no-op4",
            parts,
            &op4,
            &no_op4,
            &cfg,
            83,
            3,
        );
        rows.push(row_on);
        rows.push(row_off);
        // The lock-all baseline is an order of magnitude slower under 2PC
        // rounds + message latency; a shorter stream keeps its wall-clock
        // bounded without touching the ablation pair.
        let adist = AssumeDistributed::new();
        let cfg_lockall = live_config(scale, 79, 250, 60);
        rows.push(measure_live(Bench::Tpcc, "lock-all", parts, &adist, &cfg_lockall, 83));
    }
    rows
}

/// Machine-readable form of the live rows, for tracking the perf trajectory
/// across PRs (flat JSON, no serde dependency needed for a fixed schema).
pub fn bench_live_json(rows: &[LiveRow], scale: Scale) -> String {
    let opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), |x| format!("{x:.3}"));
    let mut s = String::from("{\n  \"schema\": 1,\n");
    let _ = writeln!(
        s,
        "  \"scale\": \"{}\",",
        if scale == Scale::Full { "full" } else { "quick" }
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let m = &r.metrics;
        let _ = write!(
            s,
            "    {{\"bench\": \"{}\", \"advisor\": \"{}\", \"workers\": {}, \
             \"throughput_tps\": {:.1}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
             \"committed\": {}, \"user_aborts\": {}, \"restarts\": {}, \"distributed\": {}, \
             \"speculative\": {}, \"cascaded_aborts\": {}, \"lock_hold_mean_ms\": {}, \
             \"lock_hold_p95_ms\": {}}}",
            r.bench,
            r.advisor,
            r.workers,
            m.throughput_tps(),
            opt(m.latency.p50_ms()),
            opt(m.latency.p95_ms()),
            opt(m.latency.p99_ms()),
            m.committed,
            m.user_aborts,
            m.restarts,
            m.distributed,
            m.speculative,
            m.cascaded_aborts,
            opt(m.lock_hold.mean_us().map(|us| us / 1000.0)),
            opt(m.lock_hold.p95_ms()),
        );
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `live` — *measured* wall-clock throughput on the multi-threaded
/// partition runtime: one OS worker thread per partition. TATP sweeps
/// Houdini against the assume-single-partition and lock-all baselines;
/// TPC-C ablates OP4 (early prepare + speculative execution) on vs off.
/// Also writes the rows to `BENCH_live.json` in the working directory.
///
/// Each commit pays a real 200 µs synchronous log-flush sleep at its
/// participating partition(s); flushes on different partitions overlap in
/// wall-clock time, so scaling reflects genuine partition concurrency even
/// on machines with fewer cores than workers (DESIGN.md §"Live runtime").
pub fn live(scale: Scale) -> String {
    let rows = live_rows(scale);
    let get = |bench: &str, advisor: &str, workers: u32| -> &engine::RunMetrics {
        &rows
            .iter()
            .find(|r| r.bench == bench && r.advisor == advisor && r.workers == workers)
            .expect("row measured")
            .metrics
    };
    let q = |v: Option<f64>| v.map_or_else(|| "      -".into(), |x| format!("{x:7.2}"));
    let mut out = String::from(
        "# Live runtime: wall-clock TATP throughput (txn/s), one worker thread per partition\n\
         workers  houdini  asp      lock-all  h-p50ms  h-p95ms  h-p99ms  h-commit  h-abort  h-restart  h-spec\n",
    );
    for parts in LIVE_WORKER_COUNTS {
        let hm = get("TATP", "houdini", parts);
        let am = get("TATP", "asp", parts);
        let dm = get("TATP", "lock-all", parts);
        let _ = writeln!(
            out,
            "{parts:7}  {:7.0}  {:7.0}  {:8.0}  {}  {}  {}  {:8}  {:7}  {:9}  {:6}",
            hm.throughput_tps(),
            am.throughput_tps(),
            dm.throughput_tps(),
            q(hm.latency.p50_ms()),
            q(hm.latency.p95_ms()),
            q(hm.latency.p99_ms()),
            hm.committed,
            hm.user_aborts,
            hm.restarts,
            hm.speculative,
        );
    }
    let _ = writeln!(
        out,
        "\n# Live runtime: wall-clock TPC-C throughput (txn/s) — OP4 early-prepare + speculation ablation\n\
         workers  op4-on   op4-off  lock-all  on-spec  on-cascade  on-lockms  off-lockms"
    );
    for parts in LIVE_WORKER_COUNTS {
        let on = get("TPC-C", "houdini", parts);
        let off = get("TPC-C", "houdini-no-op4", parts);
        let dm = get("TPC-C", "lock-all", parts);
        let _ = writeln!(
            out,
            "{parts:7}  {:7.0}  {:7.0}  {:8.0}  {:7}  {:10}  {:>9}  {:>10}",
            on.throughput_tps(),
            off.throughput_tps(),
            dm.throughput_tps(),
            on.speculative,
            on.cascaded_aborts,
            q(on.lock_hold.mean_us().map(|us| us / 1000.0)),
            q(off.lock_hold.mean_us().map(|us| us / 1000.0)),
        );
    }
    match std::fs::write("BENCH_live.json", bench_live_json(&rows, scale)) {
        Ok(()) => {
            let _ = writeln!(out, "\n(rows written to BENCH_live.json)");
        }
        Err(e) => {
            let _ = writeln!(out, "\n(could not write BENCH_live.json: {e})");
        }
    }
    out
}

/// Runs one experiment by id (`fig3`, `table3`, ...; `all` runs everything).
pub fn run_experiment(id: &str, scale: Scale) -> String {
    match id {
        "fig3" => fig3(scale),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "table3" => table3(scale),
        "fig11" => fig11(scale),
        "table4" => table4(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "live" => live(scale),
        "all" => {
            let ids = [
                "fig3", "fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "table3", "fig11",
                "table4", "fig12", "fig13", "live",
            ];
            ids.iter().map(|i| run_experiment(i, scale) + "\n").collect()
        }
        other => format!("unknown experiment id: {other}\n"),
    }
}
