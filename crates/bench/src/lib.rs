//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! `cargo run -p bench --release --bin experiments -- <id>` prints the rows
//! for one experiment (`all` runs everything); the criterion benches under
//! `benches/` exercise the same kernels at reduced scale.

pub mod experiments;
pub mod open_loop;
pub mod setup;

pub use open_loop::{open_loop_measure, OpenLoopConfig, OpenLoopMeasurement};
pub use setup::{
    collect_trace, new_order_generator, run_sim, sim_config, trained_houdini, trained_houdini_cfg,
    Scale,
};
