//! Pins the allocation count of the live *distributed* path.
//!
//! The fragment-lane work (reusable per-(client, worker) SPSC lanes, a
//! reusable per-participant reply slot, one `ExecBatch` message per
//! participant per batch step) removed the two fresh channels and the
//! per-query message traffic every coordinated call used to allocate.
//! This test holds that line the same way `alloc_budget.rs` does for the
//! fast path: a counting global allocator measures two equal batches of
//! identical forced-distributed calls after a warm-up long enough to
//! saturate every amortized structure (fragment-lane registry, spare
//! sessions, metrics sample buffers), and the batches must allocate
//! *exactly* the same amount, under a per-call cap.
//!
//! Lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide: one test per file keeps the
//! counts attributable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use common::Value;
use engine::baselines::AssumeDistributed;
use engine::{LiveConfig, LiveRuntime};
use workloads::Bench;

/// Counts every allocation event (alloc, alloc_zeroed, realloc) so buffer
/// *growth* — the classic amortized leak back onto a hot path — is
/// caught, not just fresh allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// ordering: Relaxed — the counter is a statistic; batch reads happen on the
// test thread after the runtime quiesces (joined by the reply handshake),
// so no cross-thread edge is needed beyond the call's own synchronization.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Calls long enough to push every doubling buffer (latency samples grow
/// to a 1024 capacity) past the measured window: warm-up plus both
/// batches stays under the next doubling, so growth events cannot differ
/// between batches.
const WARMUP: usize = 512;
const BATCH: usize = 100;

/// Per-call allocation ceiling, with headroom over the measured count
/// (17/call: request args, the procedure instance and its query
/// invocations, per-batch ship/merge scratch, per-query param clones for
/// the shipped fragments, and the result rows). Fails loudly if a
/// per-transaction channel pair, mailbox, or per-query message sneaks
/// back onto the coordinated path.
const PER_CALL_CAP: u64 = 32;

fn run_batch(client: &mut engine::Client<AssumeDistributed>, proc: common::ProcId) -> u64 {
    let start = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..BATCH {
        let out = client.call(proc, vec![Value::Int(5)]).expect("runtime alive");
        assert_eq!(
            out,
            engine::advisor::TxnOutcome::Committed,
            "GetSubscriber on a loaded row must commit"
        );
    }
    ALLOCS.load(Ordering::Relaxed) - start
}

#[test]
fn distributed_path_allocations_are_pinned() {
    let bench = Bench::Tatp;
    // Two partitions + lock-all advisor: every call coordinates a
    // two-partition lock set through the full distributed machinery
    // (fragment lanes, ExecBatch, coalesced 2PC) even though the query
    // itself targets one partition.
    let db = bench.database(2);
    let registry = bench.registry();
    let proc = registry.catalog().proc_id("GetSubscriber").expect("TATP proc");
    let cfg = LiveConfig { seed: 11, ..LiveConfig::default() };
    let rt = LiveRuntime::start(db, registry, AssumeDistributed::new(), cfg);
    let mut client = rt.client();

    for _ in 0..WARMUP {
        client.call(proc, vec![Value::Int(5)]).expect("warm-up call");
    }

    let first = run_batch(&mut client, proc);
    let second = run_batch(&mut client, proc);

    eprintln!(
        "[alloc_budget_dist] {first} allocations / {BATCH} calls ({} per call)",
        first / BATCH as u64
    );
    assert_eq!(
        first, second,
        "steady-state batches must allocate identically: {first} vs {second} over {BATCH} calls"
    );
    assert!(
        first <= PER_CALL_CAP * BATCH as u64,
        "distributed path allocates {first} times over {BATCH} calls ({} per call); cap is {PER_CALL_CAP}",
        first / BATCH as u64
    );

    drop(client);
    let (metrics, _db) = rt.shutdown();
    assert_eq!(metrics.committed, (WARMUP + 2 * BATCH) as u64);
    assert_eq!(metrics.distributed, (WARMUP + 2 * BATCH) as u64, "every call must coordinate");
}
