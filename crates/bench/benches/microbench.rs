//! Microbenchmarks of the hot on-line kernels: real wall-clock cost of the
//! operations the paper charges per transaction (model build, path
//! estimation, runtime tracking, storage ops).

use bench::collect_trace;
use common::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use houdini::{train, CatalogRule, TrainingConfig};
use markov::{estimate_path, EstimateConfig, PathTracker};
use std::hint::black_box;
use storage::{Database, Schema, UndoLog};
use trace::{PartitionResolver as _, TraceRecord};
use workloads::Bench;

fn storage_ops(c: &mut Criterion) {
    let schemas = vec![Schema::new("T", &["ID", "V"], &[0], Some(0))];
    let mut db = Database::new(schemas, 4, &[]);
    let mut undo = UndoLog::new();
    for i in 0..10_000i64 {
        let p = db.partition_for_value(&Value::Int(i));
        db.insert(p, 0, vec![Value::Int(i), Value::Int(0)], &mut undo).unwrap();
    }
    undo.clear();
    let mut group = c.benchmark_group("storage");
    group.bench_function("point_get", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            let p = db.partition_for_value(&Value::Int(i));
            black_box(db.get(p, 0, &[Value::Int(i)]).is_some())
        })
    });
    group.bench_function("update_with_undo", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 11) % 10_000;
            let p = db.partition_for_value(&Value::Int(i));
            db.update(p, 0, &[Value::Int(i)], |r| r[1] = Value::Int(i), &mut undo).unwrap();
            undo.clear();
        })
    });
    group.finish();
}

fn tatp_estimation(c: &mut Criterion) {
    // Table 4's rightmost column: TATP estimates land around 0.01-0.07 ms.
    let parts = 16;
    let (catalog, wl) = collect_trace(Bench::Tatp, parts, 2000, 9);
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let proc = catalog.proc_id("GetSubscriber").unwrap();
    let pred = &preds[proc as usize];
    let rule = CatalogRule::new(&catalog, proc, parts);
    let cfg = EstimateConfig::default();
    c.bench_function("estimate/tatp_get_subscriber", |b| {
        let mut s = 0i64;
        b.iter(|| {
            s = (s + 13) % 3200;
            let args = vec![Value::Int(s)];
            let idx = pred.models.select(&args);
            black_box(
                estimate_path(pred.models.model(idx), &rule, &pred.mapping, &args, &cfg).touched,
            )
        })
    });
}

fn runtime_tracking(c: &mut Criterion) {
    // §4.4's per-query update cost: advancing the tracker through a model.
    let parts = 4;
    let (catalog, wl) = collect_trace(Bench::Tpcc, parts, 1000, 9);
    let resolver = engine::CatalogResolver::new(&catalog, parts);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    let mut model = markov::build_model(1, &records, &resolver);
    let replay: Vec<TraceRecord> = records.iter().take(32).map(|r| (*r).clone()).collect();
    c.bench_function("tracker/replay_neworder", |b| {
        let mut i = 0;
        b.iter(|| {
            let rec = &replay[i % replay.len()];
            i += 1;
            let mut t = PathTracker::new(&model);
            for q in &rec.queries {
                let parts = resolver.partitions(1, q.query, &q.params);
                t.advance(&mut model, q.query, parts, &resolver);
            }
            t.finish(&mut model, !rec.aborted);
            black_box(t.path().len())
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = storage_ops, tatp_estimation, runtime_tracking
}
criterion_main!(micro);
