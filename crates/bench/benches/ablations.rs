//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_ptables` — pre-computed probability tables vs an on-demand
//!   graph traversal (the paper reports pre-computation saves ~24% of
//!   on-line estimation time, §3.1).
//! * `ablation_hasher` — the in-repo FxHash-style hasher vs SipHash on the
//!   Markov vertex-key map, the hottest table in the system.
//! * `ablation_mapping_threshold` — mapping-coefficient cutoff sweep (the
//!   paper found ≥0.9 values equivalent, §4.1).
//! * `ablation_early_prepare` — the engine with and without OP4 (early
//!   prepare + speculation), isolating that optimization's throughput value.

use bench::{collect_trace, run_sim, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::baselines::Oracle;
use markov::{MarkovModel, QueryKind, VertexId};
use std::collections::HashMap;
use std::hint::black_box;
use trace::TraceRecord;
use workloads::Bench;

/// Recomputes a vertex's abort probability by traversing the graph — what
/// every on-line estimate would pay without pre-computed tables.
fn abort_prob_by_traversal(model: &MarkovModel, id: VertexId, memo: &mut Vec<f64>) -> f64 {
    if memo[id as usize] >= 0.0 {
        return memo[id as usize];
    }
    let v = model.vertex(id);
    let p = match v.key.kind {
        QueryKind::Abort => 1.0,
        QueryKind::Commit => 0.0,
        _ => v.edges.iter().map(|e| e.prob * abort_prob_by_traversal(model, e.to, memo)).sum(),
    };
    memo[id as usize] = p;
    p
}

fn ablation_ptables(c: &mut Criterion) {
    let (catalog, wl) = collect_trace(Bench::Tpcc, 4, 1500, 3);
    let resolver = engine::CatalogResolver::new(&catalog, 4);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let starts: Vec<VertexId> = (0..model.len() as VertexId).collect();
    let mut group = c.benchmark_group("ablation_ptables");
    group.bench_function("precomputed_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &starts {
                acc += model.vertex(s).table.abort;
            }
            black_box(acc)
        })
    });
    group.bench_function("on_demand_traversal", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            // Fresh memo per estimate: an on-line estimator cannot reuse
            // another transaction's traversal.
            for &s in &starts {
                let mut memo = vec![-1.0f64; model.len()];
                acc += abort_prob_by_traversal(&model, s, &mut memo);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn ablation_hasher(c: &mut Criterion) {
    let (catalog, wl) = collect_trace(Bench::Tpcc, 8, 1500, 3);
    let resolver = engine::CatalogResolver::new(&catalog, 8);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    let model = markov::build_model(1, &records, &resolver);
    let keys: Vec<markov::VertexKey> = model.vertices().iter().map(|v| v.key).collect();

    let mut fx: common::FxHashMap<markov::VertexKey, u32> = common::FxHashMap::default();
    let mut sip: HashMap<markov::VertexKey, u32> = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        fx.insert(*k, i as u32);
        sip.insert(*k, i as u32);
    }
    let mut group = c.benchmark_group("ablation_hasher");
    group.bench_function("fxhash_vertex_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc = acc.wrapping_add(*fx.get(k).unwrap());
            }
            black_box(acc)
        })
    });
    group.bench_function("siphash_vertex_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc = acc.wrapping_add(*sip.get(k).unwrap());
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn ablation_mapping_threshold(c: &mut Criterion) {
    let (_, wl) = collect_trace(Bench::Tpcc, 4, 1500, 3);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    println!("# ablation_mapping_threshold: surviving NewOrder mapping entries");
    for threshold in [0.5, 0.8, 0.9, 0.95, 1.0] {
        let m = mapping::build_mapping(&records, &mapping::MappingConfig { threshold });
        println!("  threshold {threshold:.2}: {} entries", m.len());
    }
    let mut group = c.benchmark_group("ablation_mapping_threshold");
    group.bench_function("build_mapping_t0.9", |b| {
        b.iter(|| {
            black_box(
                mapping::build_mapping(&records, &mapping::MappingConfig { threshold: 0.9 }).len(),
            )
        })
    });
    group.finish();
}

fn ablation_early_prepare(c: &mut Criterion) {
    // Throughput with and without OP4, using the oracle so prediction
    // accuracy is not a confound.
    let with = {
        let mut o = Oracle::new();
        run_sim(Bench::Tatp, 8, &mut o, Scale::Quick, 7).0.throughput_tps()
    };
    let without = {
        let mut o = Oracle::without_early_prepare();
        run_sim(Bench::Tatp, 8, &mut o, Scale::Quick, 7).0.throughput_tps()
    };
    println!(
        "# ablation_early_prepare (TATP, 8 partitions, oracle): \
         with OP4 = {with:.0} txn/s, without = {without:.0} txn/s"
    );
    let mut group = c.benchmark_group("ablation_early_prepare");
    group.sample_size(10);
    group.bench_function("tatp_oracle_with_op4", |b| {
        b.iter(|| {
            let mut o = Oracle::new();
            black_box(run_sim(Bench::Tatp, 8, &mut o, Scale::Quick, 7).0.committed)
        })
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_ptables, ablation_hasher, ablation_mapping_threshold,
              ablation_early_prepare
}
criterion_main!(ablations);
