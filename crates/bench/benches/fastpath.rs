//! Microbenchmark of the live fast path: one steady-state [`Client::call`]
//! round trip through the SPSC lane, the worker's fair sweep, and the
//! reused reply slot — the per-transaction overhead Fig. 11 attributes to
//! coordination and queueing, measured directly.
//!
//! Two advisors bracket the path: `assume_single_partition` is the floor
//! (unit session, no estimation), `houdini` adds the paper's Markov-model
//! estimate plus the spare-session graft, so the spread between the two is
//! the model's true fast-path cost.

use bench::trained_houdini;
use common::Value;
use criterion::{criterion_group, criterion_main, Criterion};
use engine::baselines::{AssumeDistributed, AssumeSinglePartition};
use engine::{Client, LiveAdvisor, LiveConfig, LiveRuntime};
use std::hint::black_box;
use std::sync::Arc;
use workloads::Bench;

const SUBS: i64 = 200; // one partition's subscriber population

fn call_loop<A: LiveAdvisor + 'static>(c: &mut Criterion, name: &str, advisor: A) {
    let bench = Bench::Tatp;
    let db = bench.database(1);
    let registry = bench.registry();
    let proc = registry.catalog().proc_id("GetSubscriber").expect("TATP proc");
    let cfg = LiveConfig { seed: 23, ..LiveConfig::default() };
    let rt = LiveRuntime::start(db, registry, advisor, cfg);
    let mut client: Client<A> = rt.client();
    // Warm the session cache and lane registry off the measured path.
    for s in 0..64 {
        client.call(proc, vec![Value::Int(s % SUBS)]).expect("warm-up call");
    }
    let mut s = 0i64;
    c.bench_function(name, |b| {
        b.iter(|| {
            s = (s + 13) % SUBS;
            black_box(client.call(proc, vec![Value::Int(s)]).expect("runtime alive"))
        })
    });
    drop(client);
    rt.shutdown();
}

fn fastpath_asp(c: &mut Criterion) {
    call_loop(c, "fastpath/call_asp", AssumeSinglePartition::new());
}

fn fastpath_houdini(c: &mut Criterion) {
    // Quick-scale training: the bench measures the serving path, not the
    // trainer; an Arc handle is the same shape the experiments use.
    let houdini = Arc::new(trained_houdini(Bench::Tatp, 1, 1_500, true, 0.5, 23));
    call_loop(c, "fastpath/call_houdini", houdini);
}

/// One steady-state *distributed* round trip: a two-partition lock-all
/// coordination through the fragment lanes — lock acquire, one `ExecBatch`
/// ship + merge, coalesced `VoteFinish` 2PC, reply. The spread over
/// `fastpath/call_asp` is the coordination overhead the fragment-lane and
/// allocation-diet work keeps off the per-call path.
fn distributed_roundtrip(c: &mut Criterion) {
    let bench = Bench::Tatp;
    let db = bench.database(2);
    let registry = bench.registry();
    let proc = registry.catalog().proc_id("GetSubscriber").expect("TATP proc");
    let cfg = LiveConfig { seed: 23, ..LiveConfig::default() };
    let rt = LiveRuntime::start(db, registry, AssumeDistributed::new(), cfg);
    let mut client: Client<AssumeDistributed> = rt.client();
    // Warm the fragment-lane registry and session cache off the measured
    // path (the first call per worker registers the lane).
    for s in 0..64 {
        client.call(proc, vec![Value::Int(s % SUBS)]).expect("warm-up call");
    }
    let mut s = 0i64;
    c.bench_function("fastpath/call_distributed", |b| {
        b.iter(|| {
            s = (s + 13) % SUBS;
            black_box(client.call(proc, vec![Value::Int(s)]).expect("runtime alive"))
        })
    });
    drop(client);
    rt.shutdown();
}

criterion_group!(fastpath, fastpath_asp, fastpath_houdini, distributed_roundtrip);
criterion_main!(fastpath);
