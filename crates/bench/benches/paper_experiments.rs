//! One criterion bench per paper table/figure: each group times the hot
//! kernel of the corresponding experiment at reduced scale and prints the
//! reproduced rows once. Full-scale regeneration lives in the `experiments`
//! binary (`cargo run -p bench --release --bin experiments -- all --full`).

use bench::experiments::run_experiment;
use bench::{collect_trace, new_order_generator, run_sim, trained_houdini, Scale};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::baselines::Oracle;
use engine::RequestGenerator;
use houdini::{evaluate_accuracy, train, CatalogRule, TrainingConfig};
use markov::{estimate_path, EstimateConfig};
use std::hint::black_box;
use trace::TraceRecord;
use workloads::Bench;

/// Fig. 3 kernel: a NewOrder-only simulation tick under proper selection.
fn fig3_motivating(c: &mut Criterion) {
    println!("{}", run_experiment("fig3", Scale::Quick));
    c.bench_function("fig3/neworder_sim_4p_oracle", |b| {
        b.iter(|| {
            let mut db = Bench::Tpcc.database(4);
            let reg = Bench::Tpcc.registry();
            let mut advisor = Oracle::new();
            let mut gen = new_order_generator(4, 11);
            let cfg = engine::SimConfig {
                num_partitions: 4,
                warmup_us: 0.0,
                measure_us: 30_000.0,
                ..Default::default()
            };
            let sim = engine::Simulation::new(
                &mut db,
                &reg,
                &mut advisor,
                &mut gen,
                engine::CostModel::default(),
                cfg,
            );
            black_box(sim.run().expect("sim").0.committed)
        })
    });
}

/// Figs. 4/5 kernel: building the NewOrder model from a trace.
fn fig4_model_build(c: &mut Criterion) {
    println!("{}", run_experiment("fig5", Scale::Quick));
    let (catalog, wl) = collect_trace(Bench::Tpcc, 2, 1500, 4);
    let resolver = engine::CatalogResolver::new(&catalog, 2);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    c.bench_function("fig4/build_neworder_model", |b| {
        b.iter(|| black_box(markov::build_model(1, &records, &resolver).len()))
    });
}

/// Fig. 7 kernel: deriving the parameter mapping.
fn fig7_mapping(c: &mut Criterion) {
    println!("{}", run_experiment("fig7", Scale::Quick));
    let (_, wl) = collect_trace(Bench::Tpcc, 2, 1500, 4);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    c.bench_function("fig7/build_neworder_mapping", |b| {
        b.iter(|| {
            black_box(mapping::build_mapping(&records, &mapping::MappingConfig::default()).len())
        })
    });
}

/// Fig. 8 / Table 4 estimation kernel: one initial path estimate — the
/// per-transaction cost Houdini pays on-line (§6.3 measures it at
/// microseconds-to-milliseconds per procedure).
fn fig8_estimation(c: &mut Criterion) {
    println!("{}", run_experiment("fig8", Scale::Quick));
    let parts = 16;
    let (catalog, wl) = collect_trace(Bench::Tpcc, parts, 2000, 8);
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let pred = &preds[1];
    let mut gen = workloads::tpcc::Generator::new(parts, 77);
    let reqs: Vec<Vec<common::Value>> = (0..64)
        .filter_map(|i| {
            let (proc, args) = gen.next_request(i % 8);
            (proc == 1).then_some(args)
        })
        .collect();
    let rule = CatalogRule::new(&catalog, 1, parts);
    let cfg = EstimateConfig::default();
    c.bench_function("fig8/estimate_neworder_path_16p", |b| {
        let mut i = 0;
        b.iter(|| {
            let args = &reqs[i % reqs.len()];
            i += 1;
            let idx = pred.models.select(args);
            let est = estimate_path(pred.models.model(idx), &rule, &pred.mapping, args, &cfg);
            black_box(est.touched)
        })
    });
}

/// Fig. 9 kernel: the full model-partitioning training pipeline.
fn fig9_training(c: &mut Criterion) {
    println!("{}", run_experiment("fig9", Scale::Quick));
    let (catalog, wl) = collect_trace(Bench::Tpcc, 2, 800, 4);
    let records: Vec<&TraceRecord> = wl.for_proc(1);
    c.bench_function("fig9/train_partitioned_neworder", |b| {
        b.iter(|| {
            let pred = houdini::train_proc(&catalog, 2, 1, &records, &TrainingConfig::default());
            black_box(pred.models.total_states())
        })
    });
}

/// Table 3 kernel: off-line accuracy evaluation of a trained predictor.
fn table3_accuracy(c: &mut Criterion) {
    println!("{}", run_experiment("table3", Scale::Quick));
    let parts = 16;
    let (catalog, wl) = collect_trace(Bench::Tatp, parts, 2000, 23);
    let (train_recs, test_recs) = wl.records.split_at(1000);
    let tw = trace::Workload { records: train_recs.to_vec() };
    let preds = train(&catalog, parts, &tw, &TrainingConfig::default());
    let test: Vec<&TraceRecord> = test_recs.iter().filter(|r| r.proc == 3).collect();
    c.bench_function("table3/evaluate_getsubscriber_accuracy", |b| {
        b.iter(|| black_box(evaluate_accuracy(&preds[3], &catalog, parts, 3, &test, 0.5).total))
    });
}

/// Fig. 11 / Table 4 / Fig. 12 kernel: a timed Houdini simulation tick.
fn fig12_throughput(c: &mut Criterion) {
    println!("{}", run_experiment("fig10", Scale::Quick));
    println!("{}", run_experiment("fig11", Scale::Quick));
    println!("{}", run_experiment("table4", Scale::Quick));
    println!("{}", run_experiment("fig12", Scale::Quick));
    let mut houdini = trained_houdini(Bench::Tatp, 8, 1200, true, 0.5, 31);
    c.bench_function("fig12/tatp_houdini_sim_8p", |b| {
        b.iter(|| black_box(run_sim(Bench::Tatp, 8, &mut houdini, Scale::Quick, 37).0.committed))
    });
}

/// Fig. 13 kernel: threshold sensitivity (prints the sweep, times one run).
fn fig13_confidence(c: &mut Criterion) {
    println!("{}", run_experiment("fig13", Scale::Quick));
    let mut houdini = trained_houdini(Bench::Tpcc, 8, 1200, true, 0.0, 41);
    c.bench_function("fig13/tpcc_houdini_sim_threshold0", |b| {
        b.iter(|| black_box(run_sim(Bench::Tpcc, 8, &mut houdini, Scale::Quick, 43).0.committed))
    });
    let _: u64 = {
        // keep the generator helper linked
        let mut g = new_order_generator(2, 1);
        g.next_request(0).0.into()
    };
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets = fig3_motivating, fig4_model_build, fig7_mapping, fig8_estimation,
              fig9_training, table3_accuracy, fig12_throughput, fig13_confidence
}
criterion_main!(paper);
