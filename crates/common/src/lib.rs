//! Shared primitives for the predictive-OLTP reproduction.
//!
//! This crate holds the vocabulary types used by every other crate in the
//! workspace: SQL-ish [`Value`]s, partition/node identifiers, the
//! [`PartitionSet`] bitmask, a fast FxHash-style hasher for hot-path maps,
//! deterministic RNG plumbing, and the shared error type.

pub mod epoch;
pub mod error;
pub mod flush;
pub mod fxhash;
pub mod ids;
pub mod ring;
pub mod rng;
pub mod sync;
pub mod value;

pub use epoch::EpochCell;
pub use error::{Error, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ids::{NodeId, PartitionId, PartitionSet, ProcId, QueryId, TxnId};
pub use rng::{derive_seed, seeded_rng};
pub use value::Value;
