//! Shared error type for the workspace.

use std::fmt;

/// Errors surfaced across crate boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table, procedure, query, or column name was not found in a catalog.
    NotFound(String),
    /// A value had the wrong type for the operation.
    TypeMismatch { expected: &'static str, got: String },
    /// An operation violated a storage invariant (e.g. duplicate primary key).
    Constraint(String),
    /// A transaction touched a partition it did not lock; the engine aborts
    /// and restarts it (paper §2 OP2).
    PartitionViolation { txn: u64, partition: u32 },
    /// A transaction aborted after undo logging was disabled: unrecoverable
    /// (paper §2 OP3 — "the node must halt").
    UnrecoverableAbort { txn: u64 },
    /// User/control-code-initiated abort (e.g. TPC-C invalid item).
    UserAbort(String),
    /// Trace or model (de)serialization failure.
    Serde(String),
    /// Anything else.
    Other(String),
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::Constraint(msg) => write!(f, "constraint violation: {msg}"),
            Error::PartitionViolation { txn, partition } => {
                write!(f, "txn {txn} accessed unlocked partition {partition}")
            }
            Error::UnrecoverableAbort { txn } => {
                write!(f, "txn {txn} aborted without undo log: node halt")
            }
            Error::UserAbort(msg) => write!(f, "user abort: {msg}"),
            Error::Serde(msg) => write!(f, "serialization error: {msg}"),
            Error::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(Error::NotFound("TABLE X".into()).to_string(), "not found: TABLE X");
        assert!(Error::PartitionViolation { txn: 9, partition: 3 }
            .to_string()
            .contains("partition 3"));
        assert!(Error::UnrecoverableAbort { txn: 1 }.to_string().contains("halt"));
    }
}
