//! [`EpochCell`]: a lock-free-on-the-read-path publication cell for shared
//! snapshots (`ArcSwap`-style, hand-rolled because the build is offline).
//!
//! The live runtime shares trained advisor state immutably across every
//! client and worker thread; on-line model maintenance (§4.5) needs to
//! *replace* that state without stopping traffic. `EpochCell` holds the
//! current snapshot behind an epoch counter: readers clone an `Arc` of the
//! published snapshot, a writer builds the next snapshot off to the side
//! and publishes it as a new epoch. Readers therefore never wait on a model
//! rebuild, and a transaction that captured a snapshot keeps using it
//! consistently until it ends, no matter how many epochs are published
//! meanwhile.
//!
//! ## Memory-ordering argument
//!
//! The cell keeps two slots; epoch `e` lives in slot `e & 1`. A writer
//! publishing epoch `e + 1` (serialized by the writer mutex) assigns the
//! new `Arc` into slot `(e + 1) & 1` under that slot's mutex and *then*
//! stores `e + 1` into the epoch counter with `Release`. A reader loads the
//! epoch with `Acquire` and locks the indicated slot:
//!
//! * If it reads `e + 1`, the `Release`/`Acquire` pair on the counter makes
//!   the slot assignment (and the snapshot construction before it) visible.
//! * If it still reads `e`, it locks the *other* slot, which the in-flight
//!   writer does not touch — the clone is an untouched, fully-published
//!   snapshot.
//! * Only a writer publishing `e + 2` rewrites the slot a reader of epoch
//!   `e` is about to lock. The slot mutex orders the two accesses: the
//!   reader's clone observes either the epoch-`e` value or the completely
//!   assigned epoch-`e + 2` value. Either way it is a value that was fully
//!   constructed before publication — never a torn or partial one.
//!
//! Reader critical sections are a single `Arc` clone (a few nanoseconds),
//! and the slot a reader locks is uncontended by the writer publishing the
//! next epoch, so the read path behaves as lock-free in practice: it can
//! only serialize behind another reader's `Arc` clone or a writer that has
//! already raced two full publications past it.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};

/// A shared snapshot cell: readers clone the current epoch's `Arc`, a
/// writer publishes a replacement snapshot as a new epoch.
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Current epoch; the snapshot lives in slot `epoch & 1`.
    epoch: AtomicU64,
    /// Double-buffered snapshot slots (see the module docs).
    slots: [Mutex<Arc<T>>; 2],
    /// Serializes writers; readers never take it.
    writer: Mutex<()>,
}

impl<T> EpochCell<T> {
    /// A cell at epoch 0 holding `value`.
    pub fn new(value: T) -> Self {
        let arc = Arc::new(value);
        EpochCell {
            epoch: AtomicU64::new(0),
            slots: [Mutex::new(arc.clone()), Mutex::new(arc)],
            writer: Mutex::new(()),
        }
    }

    /// The current epoch number (0 until the first [`EpochCell::store`]).
    pub fn epoch(&self) -> u64 {
        // ordering: Acquire pairs with the Release publication store so a
        // caller that observes epoch e also observes everything the writer
        // did before publishing e (same edge the read path relies on).
        self.epoch.load(Ordering::Acquire)
    }

    /// Clones the current snapshot.
    pub fn load(&self) -> Arc<T> {
        self.load_with_epoch().1
    }

    /// Clones the current snapshot together with its epoch number. The
    /// returned epoch is a lower bound: a racing writer may hand back the
    /// *newer* snapshot it is publishing, which is equally valid (any value
    /// returned was fully constructed before publication).
    pub fn load_with_epoch(&self) -> (u64, Arc<T>) {
        // ordering: Acquire pairs with the writer's Release store — a reader
        // that observes epoch e sees the slot assignment for e (module docs
        // walk the three reader/writer races).
        let e = self.epoch.load(Ordering::Acquire);
        let arc = self.slots[(e & 1) as usize].lock().expect("epoch slot poisoned").clone();
        (e, arc)
    }

    /// Publishes `value` as the next epoch and returns its epoch number.
    /// Writers are serialized; readers keep loading the previous epoch
    /// until the final counter store.
    pub fn store(&self, value: T) -> u64 {
        let arc = Arc::new(value);
        let _w = self.writer.lock().expect("epoch writer poisoned");
        // ordering: Relaxed is sufficient — every epoch store happens under
        // the writer mutex, so acquiring it makes the previous writer's
        // store (and counter value) visible; the mutex, not the atomic,
        // carries the ordering here. Verified by the publish/pin model in
        // common/tests/epoch_model.rs, which fails if the *publication*
        // store below is weakened but passes with this read Relaxed.
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        *self.slots[(next & 1) as usize].lock().expect("epoch slot poisoned") = arc;
        // ordering: Release publishes the slot assignment above to readers'
        // Acquire loads of the counter.
        self.epoch.store(next, Ordering::Release);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_initial_value_at_epoch_zero() {
        let cell = EpochCell::new(41);
        assert_eq!(cell.epoch(), 0);
        let (e, v) = cell.load_with_epoch();
        assert_eq!(e, 0);
        assert_eq!(*v, 41);
    }

    #[test]
    fn store_bumps_epoch_and_replaces_snapshot() {
        let cell = EpochCell::new(String::from("a"));
        assert_eq!(cell.store(String::from("b")), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load(), "b");
        assert_eq!(cell.store(String::from("c")), 2);
        assert_eq!(*cell.load(), "c");
    }

    #[test]
    fn old_snapshots_stay_alive_while_held() {
        let cell = EpochCell::new(vec![1, 2, 3]);
        let old = cell.load();
        cell.store(vec![9]);
        // A transaction planning against the old epoch keeps a consistent
        // view; the new epoch is visible to fresh loads.
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_always_see_a_published_snapshot() {
        // Hammer the cell from reader threads while a writer republishes;
        // every observed snapshot must be internally consistent (the two
        // halves always agree), and epochs must be monotone per reader.
        let cell = std::sync::Arc::new(EpochCell::new((0u64, 0u64)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = cell.clone();
                s.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..20_000 {
                        let (e, snap) = cell.load_with_epoch();
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                        assert!(e >= last, "epoch went backwards");
                        last = e;
                    }
                });
            }
            let cell = cell.clone();
            s.spawn(move || {
                for i in 1..=2_000u64 {
                    cell.store((i, i));
                }
            });
        });
        assert_eq!(cell.epoch(), 2_000);
    }
}
