//! Identifier types and the [`PartitionSet`] bitmask.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A data partition (the unit of locking and single-threaded execution).
pub type PartitionId = u32;
/// A cluster node; each node hosts one or more partitions.
pub type NodeId = u32;
/// A stored-procedure id within a catalog.
pub type ProcId = u32;
/// A query id within a stored procedure's catalog entry.
pub type QueryId = u32;
/// A transaction id, unique within a simulation run.
pub type TxnId = u64;

/// A set of partitions, stored as a 64-bit mask.
///
/// The paper's largest evaluated cluster is 64 partitions (Fig. 3/12), so a
/// `u64` mask covers every configuration while keeping Markov-model vertex
/// keys `Copy` and comparisons O(1) — the vertex lookup is the hottest path
/// of on-line estimation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct PartitionSet(pub u64);

impl PartitionSet {
    /// Maximum number of partitions representable.
    pub const MAX_PARTITIONS: u32 = 64;

    /// The empty set.
    pub const EMPTY: PartitionSet = PartitionSet(0);

    /// A singleton set. Panics (in every build profile) on an
    /// out-of-range partition id: a release-mode `1u64 << p` with `p >= 64`
    /// masks the shift amount and silently produces the *wrong partition*
    /// (the same latent-overflow class as the simulator's old table masks),
    /// which corrupts lock sets instead of failing loudly.
    #[inline]
    pub fn single(p: PartitionId) -> Self {
        assert!(
            p < Self::MAX_PARTITIONS,
            "partition id {p} out of range (max {})",
            Self::MAX_PARTITIONS - 1
        );
        PartitionSet(1u64 << p)
    }

    /// The set containing partitions `0..n`, saturating at the full
    /// 64-partition mask: every representable partition is in `all(n)` for
    /// any `n >= 64`, instead of the masked-shift garbage `(1 << n) - 1`
    /// would produce in release builds.
    #[inline]
    pub fn all(n: u32) -> Self {
        if n >= Self::MAX_PARTITIONS {
            PartitionSet(u64::MAX)
        } else {
            PartitionSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from an iterator of partition ids.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = PartitionId>>(iter: I) -> Self {
        let mut s = PartitionSet::EMPTY;
        for p in iter {
            s.insert(p);
        }
        s
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of partitions in the set.
    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, p: PartitionId) -> bool {
        p < Self::MAX_PARTITIONS && (self.0 >> p) & 1 == 1
    }

    /// Adds a partition. Panics on an out-of-range id (see
    /// [`PartitionSet::single`] for why silence would be worse).
    #[inline]
    pub fn insert(&mut self, p: PartitionId) {
        assert!(
            p < Self::MAX_PARTITIONS,
            "partition id {p} out of range (max {})",
            Self::MAX_PARTITIONS - 1
        );
        self.0 |= 1u64 << p;
    }

    /// Removes a partition; removing an out-of-range id is a no-op (it can
    /// never be a member), not a masked shift that would clear some *other*
    /// partition's bit in release builds.
    #[inline]
    pub fn remove(&mut self, p: PartitionId) {
        if p < Self::MAX_PARTITIONS {
            self.0 &= !(1u64 << p);
        }
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: Self) -> Self {
        PartitionSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersect(self, other: Self) -> Self {
        PartitionSet(self.0 & other.0)
    }

    /// Elements of `self` not in `other`.
    #[inline]
    pub fn difference(self, other: Self) -> Self {
        PartitionSet(self.0 & !other.0)
    }

    /// True if every element of `self` is in `other`.
    #[inline]
    pub fn is_subset(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if this is exactly one partition.
    #[inline]
    pub fn is_single(self) -> bool {
        self.0.count_ones() == 1
    }

    /// The lone element of a singleton set, or the smallest element.
    #[inline]
    pub fn first(self) -> Option<PartitionId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    /// Iterates over members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = PartitionId> {
        PartitionSetIter(self.0)
    }
}

struct PartitionSetIter(u64);

impl Iterator for PartitionSetIter {
    type Item = PartitionId;

    #[inline]
    fn next(&mut self) -> Option<PartitionId> {
        if self.0 == 0 {
            None
        } else {
            let p = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(p)
        }
    }
}

impl fmt::Debug for PartitionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for PartitionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<PartitionId> for PartitionSet {
    fn from_iter<I: IntoIterator<Item = PartitionId>>(iter: I) -> Self {
        PartitionSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = PartitionSet::EMPTY;
        assert!(s.is_empty());
        s.insert(3);
        s.insert(0);
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(1));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn all_and_subset() {
        let all = PartitionSet::all(16);
        assert_eq!(all.len(), 16);
        let s = PartitionSet::from_iter([2u32, 5, 15]);
        assert!(s.is_subset(all));
        assert!(!all.is_subset(s));
        assert_eq!(PartitionSet::all(64).len(), 64);
    }

    #[test]
    fn iter_ascending() {
        let s = PartitionSet::from_iter([9u32, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn union_intersect_difference() {
        let a = PartitionSet::from_iter([1u32, 2, 3]);
        let b = PartitionSet::from_iter([3u32, 4]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersect(b), PartitionSet::single(3));
        assert_eq!(a.difference(b), PartitionSet::from_iter([1u32, 2]));
    }

    #[test]
    fn singleton() {
        assert!(PartitionSet::single(5).is_single());
        assert!(!PartitionSet::all(2).is_single());
        assert_eq!(PartitionSet::single(5).first(), Some(5));
    }

    #[test]
    fn debug_format() {
        let s = PartitionSet::from_iter([0u32, 1]);
        assert_eq!(format!("{s:?}"), "{0,1}");
    }

    // Shift-overflow regression tests: in release builds `1u64 << p` with
    // `p >= 64` masks the shift amount, so the old code silently aliased
    // partition 64 onto partition 0 (etc.) instead of failing.

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_rejects_out_of_range_id() {
        let _ = PartitionSet::single(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_out_of_range_id() {
        let mut s = PartitionSet::EMPTY;
        s.insert(64);
    }

    #[test]
    fn all_saturates_past_max_partitions() {
        assert_eq!(PartitionSet::all(65), PartitionSet::all(64));
        assert_eq!(PartitionSet::all(1000).len(), 64);
    }

    #[test]
    fn remove_out_of_range_is_a_noop() {
        let mut s = PartitionSet::all(64);
        s.remove(64); // would have cleared partition 0 via a masked shift
        s.remove(70); // would have cleared partition 6
        assert_eq!(s, PartitionSet::all(64));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!PartitionSet::all(64).contains(64));
        assert!(!PartitionSet::all(64).contains(1 << 20));
    }
}
