//! An FxHash-style hasher.
//!
//! The Markov-model vertex map and the storage-engine primary indexes are the
//! hottest hash tables in the system; SipHash (std's default) is measurably
//! slower for the short integer-ish keys we use. The approved dependency list
//! does not include `rustc-hash`, so we carry the ~30-line algorithm here.
//! The `ablation_hasher` bench quantifies the win.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative word-at-a-time hasher (the rustc "Fx" algorithm).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Drop-in `HashMap` replacement with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// Drop-in `HashSet` replacement with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&12345u64), hash_of(&12345u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }

    #[test]
    fn odd_length_bytes() {
        // Exercise the remainder path in write().
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghi"); // 9 bytes
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghj");
        assert_ne!(h1.finish(), h2.finish());
    }
}
