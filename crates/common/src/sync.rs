//! Sync facade: `std::sync` in production, `checkers::sync` under
//! `--features check`.
//!
//! Modules ported to this facade (`common::epoch`, `engine::runtime`)
//! import every sync primitive from here instead of `std::sync` — enforced
//! by `cargo xtask lint`, which forbids `std::sync` tokens in those files.
//! Without the `check` feature the re-exports below compile to *exactly*
//! the std types (zero-cost: no wrappers, no indirection); with it, the
//! same paths resolve to the `checkers` model types so the ported code can
//! be driven by the deterministic model checker.
//!
//! The `check` build is compile/clippy-only in CI today: the checked
//! protocol models are compact reimplementations (see
//! `crates/engine/tests/concurrency_models.rs`), and model-checking the
//! full runtime through this facade is the documented next step.
//!
//! Note the swap is a cargo *feature*, not the bare `--cfg check` the
//! original sketch used: features let the `checkers` dependency itself be
//! optional, and custom cfgs would trip `unexpected_cfgs` under
//! `-D warnings`.

#[cfg(not(feature = "check"))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};

#[cfg(not(feature = "check"))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(feature = "check"))]
pub mod mpsc {
    pub use std::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        SyncSender, TryRecvError, TrySendError,
    };
}

#[cfg(feature = "check")]
pub use checkers::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult,
};

#[cfg(feature = "check")]
pub use checkers::sync::atomic;

#[cfg(feature = "check")]
pub mod mpsc {
    pub use checkers::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, RecvTimeoutError, SendError, Sender,
        SyncSender, TryRecvError, TrySendError,
    };
}
