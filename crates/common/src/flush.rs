//! Cross-worker commit-flush coalescing: a shared per-log-device flush
//! sequencer.
//!
//! The live runtime models one log device per box. A durable commit needs
//! *a* device flush that starts after its log writes — not a flush of its
//! own. [`FlushSequencer`] turns that observation into shared state:
//!
//! * A writer whose log writes are (logically) in the device buffer grabs
//!   a **ticket** with [`enqueue`](FlushSequencer::enqueue). The ticket
//!   names the next flush *epoch*: any device flush that starts after the
//!   ticket was issued covers it.
//! * Anyone needing durability calls
//!   [`wait_durable`](FlushSequencer::wait_durable). The first waiter to
//!   find no flush in flight becomes the **leader** for a fresh epoch: it
//!   claims `next_epoch`, performs the device operation (a
//!   `commit_flush_us`-class sleep in the live runtime) *outside* the
//!   lock, then publishes `durable = epoch` and wakes every waiter. A
//!   ticket issued before the claim is `<= epoch`, so one device flush
//!   retires every waiter that enqueued before it started. That is the
//!   coalescing: concurrent 2PC coordinators share one sleep instead of
//!   paying one each, and worker group commits ride the same flush
//!   stream without ever sleeping ([`commit_group`](FlushSequencer::commit_group)).
//! * Waiters whose ticket is already durable — or becomes durable while
//!   they wait on another leader's flush — never touch the device at
//!   all; they are counted in `flushes_coalesced`.
//!
//! Deadlock-freedom: a waiter that finds `flushing == false` always
//! becomes the leader itself, so the only blocked state is "a leader is
//! inside the device operation", which ends with `notify_all`. Every
//! wake re-checks `durable >= ticket` under the lock (condvar waits are
//! spurious-wakeup safe by construction).
//!
//! The protocol is model-checked — including two seeded-bug twins — in
//! `crates/common/tests/flush_model.rs`; the `check` build drives this
//! exact code through [`wait_durable_with`](FlushSequencer::wait_durable_with)
//! with a recording closure in place of the sleep.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex};
use std::time::Duration;

/// The pluggable device operation behind a flush epoch: whatever makes the
/// log writes issued before the flush started durable. The sequencer calls
/// [`FlushDevice::flush`] exactly once per led epoch, outside its lock, so
/// implementations may block (an `fwrite+fsync` pass, a modeled sleep).
pub trait FlushDevice: Send + Sync {
    /// Performs one device flush for `epoch`. On return, every log write
    /// made before this flush started must be durable.
    fn flush(&self, epoch: u64);

    /// True when durability is free (flushing is a no-op): waits against
    /// this device return immediately without touching the sequencer or
    /// its counters — the historical `Duration::ZERO` fast path.
    fn is_free(&self) -> bool {
        false
    }
}

/// The seed behavior as a device: durability modeled as a fixed-latency
/// sleep per device flush. A zero duration means "durability is free" —
/// [`FlushSequencer::wait_durable_dev`] returns immediately, uncounted,
/// exactly as [`FlushSequencer::wait_durable`] always has.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedDevice(pub Duration);

impl FlushDevice for SimulatedDevice {
    fn flush(&self, _epoch: u64) {
        std::thread::sleep(self.0);
    }

    fn is_free(&self) -> bool {
        self.0.is_zero()
    }
}

/// Shared flush state, all under one mutex (held only for bookkeeping —
/// the leader drops it for the device operation itself).
#[derive(Debug)]
struct State {
    /// The epoch the next leader will claim. Doubles as the ticket
    /// counter: `enqueue` returns it un-bumped, so a ticket equals the
    /// epoch of the first flush that starts after it.
    next_epoch: u64,
    /// Highest epoch whose device flush has completed.
    durable: u64,
    /// A leader is currently inside the device operation.
    flushing: bool,
    /// Flush demands served (coordinator waits + worker group commits).
    total: u64,
    /// Demands satisfied without a dedicated device operation of their
    /// own (rode another leader's flush, or found one in flight).
    coalesced: u64,
}

/// Epoch/ticket-based flush coalescer for one log device. See the module
/// docs for the protocol.
pub struct FlushSequencer {
    state: Mutex<State>,
    cv: Condvar,
    /// Lock-free mirror of `State::flushing` so workers can consult the
    /// group-close policy without taking the mutex.
    busy: AtomicU64,
    /// Lock-free monotonic mirror of `State::durable` so workers can ask
    /// "is this ticket durable yet?" without taking the mutex (see
    /// [`FlushSequencer::durable_epoch`]).
    durable_lo: AtomicU64,
}

impl Default for FlushSequencer {
    fn default() -> Self {
        Self::new()
    }
}

impl FlushSequencer {
    pub fn new() -> Self {
        FlushSequencer {
            state: Mutex::new(State {
                next_epoch: 1,
                durable: 0,
                flushing: false,
                total: 0,
                coalesced: 0,
            }),
            cv: Condvar::new(),
            busy: AtomicU64::new(0),
            durable_lo: AtomicU64::new(0),
        }
    }

    /// Grab a ticket covering every log write made before this call. The
    /// ticket is durable once a device flush that started after it
    /// completes; pass it to [`wait_durable`](Self::wait_durable).
    pub fn enqueue(&self) -> u64 {
        self.state.lock().unwrap().next_epoch
    }

    /// Block until `ticket` is durable, performing the device operation
    /// (a real `sleep(device)`) as flush leader if none is in flight. A
    /// zero `device` models "durability is free" and returns immediately
    /// without touching the counters.
    pub fn wait_durable(&self, ticket: u64, device: Duration) {
        self.wait_durable_dev(ticket, &SimulatedDevice(device));
    }

    /// Ticket + wait in one step: the coordinator-side "flush my commit"
    /// call.
    pub fn flush(&self, device: Duration) {
        if device.is_zero() {
            return;
        }
        let ticket = self.enqueue();
        self.wait_durable_with(ticket, |_epoch| std::thread::sleep(device));
    }

    /// [`wait_durable`](Self::wait_durable) against a pluggable
    /// [`FlushDevice`]: blocks until `ticket` is durable, leading one real
    /// device flush if none is in flight. A free device (see
    /// [`FlushDevice::is_free`]) returns immediately without touching the
    /// counters. Returns `true` iff this caller led the device flush.
    pub fn wait_durable_dev(&self, ticket: u64, device: &dyn FlushDevice) -> bool {
        if device.is_free() {
            return false;
        }
        self.wait_durable_with(ticket, |epoch| device.flush(epoch))
    }

    /// The injectable-device core of [`wait_durable`](Self::wait_durable):
    /// the model tests drive the production protocol through this with a
    /// recording closure in place of the sleep. The closure receives the
    /// epoch being flushed. Returns `true` iff this caller ran the device
    /// operation itself (it led a flush).
    pub fn wait_durable_with(&self, ticket: u64, mut device: impl FnMut(u64)) -> bool {
        let mut s = self.state.lock().unwrap();
        s.total += 1;
        loop {
            if s.durable >= ticket {
                s.coalesced += 1;
                return false;
            }
            if s.flushing {
                // A leader is inside the device op; it will notify_all.
                s = self.cv.wait(s).unwrap();
                continue;
            }
            // Become the leader for a fresh epoch. Tickets only ever hold
            // past values of next_epoch, so epoch >= ticket and one pass
            // suffices.
            let epoch = s.next_epoch;
            s.next_epoch += 1;
            s.flushing = true;
            // ordering: Relaxed — advisory mirror of `flushing` for the
            // lock-free `flush_in_progress` policy peek; readers act on a
            // possibly-stale hint, never on the value for correctness.
            self.busy.store(1, Ordering::Relaxed);
            drop(s);
            device(epoch);
            s = self.state.lock().unwrap();
            // ordering: Relaxed — same advisory mirror; cleared under the
            // state lock, correctness rides on the mutex alone.
            self.busy.store(0, Ordering::Relaxed);
            s.flushing = false;
            if s.durable < epoch {
                s.durable = epoch;
                // ordering: Relaxed — monotonic mirror of `durable` for the
                // lock-free `durable_epoch` peek. A reader that sees a stale
                // (lower) value merely treats a durable ticket as still
                // pending and takes the conservative path; it can never see
                // a value ahead of a completed device flush, because this
                // store only happens after `device(epoch)` returned.
                self.durable_lo.store(epoch, Ordering::Relaxed);
            }
            self.cv.notify_all();
            return true;
        }
    }

    /// Block until `ticket` is durable, *preferring to ride a device flush
    /// someone else performs* — the dedicated flusher thread's windowed
    /// group commit, or a concurrent waiter's — and leading one itself
    /// only after `patience` passes with no flush in flight. Durable-mode
    /// 2PC coordinators use this instead of
    /// [`wait_durable_dev`](Self::wait_durable_dev): an eager leader per
    /// commit drives the fsync rate up to the commit rate, while patient
    /// waiters fold into the flusher's accumulation window so one fsync
    /// covers every commit that lands inside it. Deadlock-free by
    /// construction: patience expiring always makes this caller the
    /// leader, so no external flush is ever *required*. Returns `true`
    /// iff this caller led the device flush.
    pub fn wait_covered(&self, ticket: u64, device: &dyn FlushDevice, patience: Duration) -> bool {
        if device.is_free() {
            return false;
        }
        let deadline = std::time::Instant::now() + patience;
        let mut s = self.state.lock().unwrap();
        s.total += 1;
        loop {
            if s.durable >= ticket {
                s.coalesced += 1;
                return false;
            }
            if s.flushing {
                // A leader is inside the device op; ride it (it will
                // notify_all), then re-check coverage.
                s = self.cv.wait(s).unwrap();
                continue;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                // Patience exhausted with no flush in flight: lead one,
                // exactly as `wait_durable_with` would.
                let epoch = s.next_epoch;
                s.next_epoch += 1;
                s.flushing = true;
                // ordering: Relaxed — advisory mirror of `flushing`; see
                // `wait_durable_with`.
                self.busy.store(1, Ordering::Relaxed);
                drop(s);
                device.flush(epoch);
                s = self.state.lock().unwrap();
                // ordering: Relaxed — advisory mirror; see `wait_durable_with`.
                self.busy.store(0, Ordering::Relaxed);
                s.flushing = false;
                if s.durable < epoch {
                    s.durable = epoch;
                    // ordering: Relaxed — monotonic mirror of `durable`;
                    // see `wait_durable_with`.
                    self.durable_lo.store(epoch, Ordering::Relaxed);
                }
                self.cv.notify_all();
                return true;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
            s = guard;
        }
    }

    /// Publish a worker group commit's flush demand without waiting (the
    /// fast path never sleeps — the adaptive window elapsing *is* its
    /// flush). Counted in `flushes_total`; counted coalesced, and `true`
    /// returned, iff a device flush was in flight at close time, i.e. the
    /// group's demand merged into the cross-worker flush stream.
    pub fn commit_group(&self) -> bool {
        let mut s = self.state.lock().unwrap();
        s.total += 1;
        if s.flushing {
            s.coalesced += 1;
            true
        } else {
            false
        }
    }

    /// Lock-free peek: is a device flush in flight right now? Workers use
    /// this to close an open commit group early so its commits ride the
    /// in-flight flush stream instead of waiting out their own window.
    pub fn flush_in_progress(&self) -> bool {
        // ordering: Relaxed — advisory policy hint only; a stale read
        // merely delays or hastens a group close, both of which the
        // adaptive-window policy already tolerates.
        self.busy.load(Ordering::Relaxed) == 1
    }

    /// Lock-free peek at the highest epoch whose device flush has
    /// completed: a ticket `t` is durable iff `durable_epoch() >= t`. The
    /// value may lag the truth (never lead it), so callers using it to
    /// *skip* a wait are safe and callers seeing "not yet durable" must
    /// fall back to a real [`wait_durable_dev`](Self::wait_durable_dev).
    pub fn durable_epoch(&self) -> u64 {
        // ordering: Relaxed — monotonic, write-once-per-epoch mirror; see
        // the store in `wait_durable_with` for the staleness argument.
        self.durable_lo.load(Ordering::Relaxed)
    }

    /// `(flushes_total, flushes_coalesced)` snapshot.
    pub fn counters(&self) -> (u64, u64) {
        let s = self.state.lock().unwrap();
        (s.total, s.coalesced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
    use std::sync::Arc;

    #[test]
    fn zero_duration_is_free_and_uncounted() {
        let seq = FlushSequencer::new();
        seq.flush(Duration::ZERO);
        seq.wait_durable(7, Duration::ZERO);
        assert_eq!(seq.counters(), (0, 0));
        assert!(!seq.flush_in_progress());
    }

    #[test]
    fn free_device_is_uncounted_like_a_zero_duration() {
        let seq = FlushSequencer::new();
        assert!(!seq.wait_durable_dev(7, &SimulatedDevice(Duration::ZERO)));
        assert_eq!(seq.counters(), (0, 0));
    }

    /// A recording device: proves `wait_durable_dev` drives the exact
    /// protocol `wait_durable_with` does (same epochs, same counters).
    struct Recorder(StdAtomicU64);

    impl FlushDevice for Recorder {
        fn flush(&self, epoch: u64) {
            self.0.store(epoch, StdOrdering::SeqCst);
        }
    }

    #[test]
    fn device_waits_lead_and_coalesce_like_the_closure_path() {
        let seq = FlushSequencer::new();
        let dev = Recorder(StdAtomicU64::new(0));
        let t = seq.enqueue();
        assert!(seq.wait_durable_dev(t, &dev), "sole waiter must lead");
        assert_eq!(dev.0.load(StdOrdering::SeqCst), t, "device saw the claimed epoch");
        assert!(!seq.wait_durable_dev(t, &dev), "durable ticket coalesces");
        assert_eq!(seq.counters(), (2, 1));
    }

    #[test]
    fn durable_epoch_mirror_tracks_completed_flushes() {
        let seq = FlushSequencer::new();
        assert_eq!(seq.durable_epoch(), 0);
        let t = seq.enqueue();
        seq.wait_durable_with(t, |_| {});
        assert!(seq.durable_epoch() >= t);
        let t2 = seq.enqueue();
        assert!(seq.durable_epoch() < t2, "a fresh ticket is not durable yet");
    }

    #[test]
    fn single_thread_flush_leads_and_advances_durability() {
        let seq = FlushSequencer::new();
        let t = seq.enqueue();
        assert_eq!(t, 1);
        let led = seq.wait_durable_with(t, |_| {});
        assert!(led, "sole waiter must lead its own flush");
        // The same ticket is now durable: a second wait coalesces.
        assert!(!seq.wait_durable_with(t, |_| panic!("no device op needed")));
        assert_eq!(seq.counters(), (2, 1));
    }

    #[test]
    fn tickets_issued_after_a_claim_need_a_fresh_flush() {
        let seq = FlushSequencer::new();
        let t1 = seq.enqueue();
        assert!(seq.wait_durable_with(t1, |_| {}));
        let t2 = seq.enqueue();
        assert!(t2 > t1);
        assert!(seq.wait_durable_with(t2, |_| {}), "new ticket demands a new flush");
    }

    #[test]
    fn concurrent_waiters_coalesce_into_few_device_ops() {
        let seq = Arc::new(FlushSequencer::new());
        let device_ops = Arc::new(StdAtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (seq, ops) = (seq.clone(), device_ops.clone());
                std::thread::spawn(move || {
                    let t = seq.enqueue();
                    seq.wait_durable_with(t, |_| {
                        ops.fetch_add(1, StdOrdering::Relaxed);
                        std::thread::sleep(Duration::from_millis(2));
                    });
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let ops = device_ops.load(StdOrdering::Relaxed);
        assert!((1..=8).contains(&ops));
        let (total, coalesced) = seq.counters();
        assert_eq!(total, 8);
        assert_eq!(coalesced, 8 - ops, "every non-leader wait coalesced");
    }

    #[test]
    fn commit_group_counts_demand_and_detects_inflight_flushes() {
        let seq = FlushSequencer::new();
        assert!(!seq.commit_group(), "no flush in flight: not coalesced");
        let seq = Arc::new(seq);
        let s2 = seq.clone();
        let rode = std::thread::spawn(move || {
            let t = s2.enqueue();
            let mut rode = false;
            s2.wait_durable_with(t, |_| {
                // While the leader holds the device, a group close must
                // observe the in-flight flush and coalesce.
                rode = s2.commit_group();
                assert!(s2.flush_in_progress());
            });
            rode
        })
        .join()
        .unwrap();
        assert!(rode, "group closing mid-flush rides it");
        let (total, coalesced) = seq.counters();
        assert_eq!((total, coalesced), (3, 1));
        assert!(!seq.flush_in_progress());
    }
}
