//! Bounded lock-free SPSC ring queue plus an eventcount-style doorbell,
//! built on the [`crate::sync`] facade so the `checkers` model checker can
//! exhaust both protocols (`crates/common/tests/ring_model.rs`).
//!
//! The engine's live runtime gives every client a dedicated
//! [`spsc`] lane to each worker: producer and consumer are each a single
//! thread, so the ring needs no CAS loops — one Release store publishes an
//! element, one Acquire load observes it. Parked workers are woken through
//! a shared [`Doorbell`] whose word packs a ring count with a parked bit,
//! so the producer fast path is a single uncontended RMW and the mutex +
//! condvar are touched only when someone is actually asleep.
//!
//! # Doorbell protocol
//!
//! The consumer must never sleep while an element it has not observed sits
//! in a lane. The protocol that guarantees this:
//!
//! 1. Producer: publish the element (ring `push`), then [`Doorbell::ring`].
//! 2. Consumer: sweep all lanes; if empty, [`Doorbell::prepare_park`],
//!    then **sweep again**, and only then [`Doorbell::park`] on the token.
//!
//! The second sweep is load-bearing: `prepare_park`'s acquire RMW joins the
//! release clock of every `ring` already in the word's modification order,
//! so any element published before its ring is visible to that sweep. A
//! ring that lands *after* `prepare_park` observes the parked bit and takes
//! the mutex to notify, which serializes with the consumer's check-then-wait
//! under the same mutex — so the wakeup cannot be lost on that side either.
//! Dropping either sweep reintroduces the lost-wakeup deadlock; the model
//! test keeps a seeded twin of exactly that bug.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::time::Duration;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Producer::push`]; the rejected value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer drains.
    Full(T),
    /// The consumer handle was dropped; no one will ever pop this.
    Disconnected(T),
}

struct RingShared<T> {
    /// Count of elements popped; stored only by the consumer.
    head: AtomicU64,
    /// Count of elements pushed; stored only by the producer.
    tail: AtomicU64,
    /// 1 while the producer handle is alive.
    producer_alive: AtomicU64,
    /// 1 while the consumer handle is alive.
    consumer_alive: AtomicU64,
    /// Slot count minus one (capacity is a power of two).
    mask: u64,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// Safety: the ring moves owned `T` values between exactly two threads; the
// slot array's interior mutability is governed by the head/tail protocol
// (a slot is written only while tail points at it and read only while head
// points at it, with Release/Acquire edges on both cursors).
unsafe impl<T: Send> Send for RingShared<T> {}
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Only the last Arc drop runs this, and Arc's refcount protocol
        // already ordered both handles' final cursor stores before it.
        // ordering: Relaxed — last-Arc exclusivity (see above) makes these
        // plain reads; there is no concurrent writer left to pair with.
        let head = self.head.load(Ordering::Relaxed);
        // ordering: Relaxed — same last-Arc argument as the head load.
        let tail = self.tail.load(Ordering::Relaxed);
        let mut i = head;
        while i != tail {
            let idx = (i & self.mask) as usize;
            // Safety: slots in [head, tail) were initialized by push and
            // never reclaimed by pop.
            unsafe { self.slots[idx].get_mut().assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// Sending half of an [`spsc`] ring. Not cloneable: single producer is a
/// type-level invariant, and `push` takes `&mut self` to keep one thread
/// at a time on the cursor.
pub struct Producer<T> {
    shared: Arc<RingShared<T>>,
}

/// Receiving half of an [`spsc`] ring; same single-owner rules as
/// [`Producer`].
pub struct Consumer<T> {
    shared: Arc<RingShared<T>>,
}

/// Creates a bounded single-producer/single-consumer ring holding at least
/// `capacity` elements (rounded up to a power of two, minimum 1).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two() as u64;
    let slots = (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(RingShared {
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
        producer_alive: AtomicU64::new(1),
        consumer_alive: AtomicU64::new(1),
        mask: cap - 1,
        slots,
    });
    (Producer { shared: shared.clone() }, Consumer { shared })
}

impl<T> Producer<T> {
    /// Publishes one element, or hands it back if the ring is full or the
    /// consumer is gone.
    pub fn push(&mut self, v: T) -> Result<(), PushError<T>> {
        let r = &*self.shared;
        // ordering: Relaxed — consumer_alive is a monotonic flag used only
        // to fail fast; a stale 1 merely stores one extra element that the
        // shared-block drain reclaims.
        if r.consumer_alive.load(Ordering::Relaxed) == 0 {
            return Err(PushError::Disconnected(v));
        }
        // ordering: Relaxed — tail is stored only by this producer, so we
        // read back our own latest value.
        let tail = r.tail.load(Ordering::Relaxed);
        // ordering: Acquire — pairs with the consumer's Release head store
        // in pop(): observing head == n proves the consumer finished
        // reading slot n-1, so reusing slot (tail & mask) cannot trample a
        // read in progress.
        let head = r.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > r.mask {
            return Err(PushError::Full(v));
        }
        let idx = (tail & r.mask) as usize;
        // Safety: single producer (handle is !Clone and push is &mut), and
        // the head load above proves the slot is vacated.
        unsafe { (*r.slots[idx].get()).write(v) };
        // ordering: Release — publishes the slot write; pairs with the
        // consumer's Acquire tail load in pop().
        r.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Whether the consumer handle has been dropped.
    pub fn is_closed(&self) -> bool {
        // ordering: Relaxed — monotonic flag, no payload to order.
        self.shared.consumer_alive.load(Ordering::Relaxed) == 0
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // ordering: Release — orders this producer's final tail store
        // before the flag, so a consumer that observes producer-gone via
        // Acquire also observes every published element (is_closed cannot
        // report "closed and empty" while a final element is in flight).
        self.shared.producer_alive.store(0, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let r = &*self.shared;
        // ordering: Relaxed — head is stored only by this consumer, so we
        // read back our own latest value.
        let head = r.head.load(Ordering::Relaxed);
        // ordering: Acquire — pairs with the producer's Release tail store
        // in push(): observing tail > head makes the slot write visible.
        let tail = r.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let idx = (head & r.mask) as usize;
        // Safety: head < tail proves the producer initialized this slot,
        // and it will not rewrite it until head advances past it.
        let v = unsafe { (*r.slots[idx].get()).assume_init_read() };
        // ordering: Release — returns the slot to the producer; pairs with
        // the producer's Acquire head load in push().
        r.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Elements currently buffered (racy by nature; exact once the
    /// producer is quiescent).
    pub fn len(&self) -> usize {
        let r = &*self.shared;
        // ordering: Relaxed — own cursor, see pop().
        let head = r.head.load(Ordering::Relaxed);
        // ordering: Acquire — same pairing as pop(): a length used to
        // justify draining must make those elements' writes visible.
        let tail = r.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer is gone *and* everything it published has
    /// been drained — the point where a worker can retire the lane.
    pub fn is_closed(&self) -> bool {
        let r = &*self.shared;
        // ordering: Acquire — pairs with the producer-drop Release store:
        // observing 0 here makes the producer's final tail store visible
        // to the emptiness check below, so no final element is missed.
        if r.producer_alive.load(Ordering::Acquire) != 0 {
            return false;
        }
        self.is_empty()
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // ordering: Release — orders the final head store before the flag
        // for symmetry with the producer side; correctness of the shared
        // drain rests on Arc's refcount edges, not this store.
        self.shared.consumer_alive.store(0, Ordering::Release);
    }
}

/// Eventcount-style doorbell: one word shared by many ringers and a single
/// parker. Bit 0 is the parked flag (flipped only by the parker); the
/// upper bits count rings. The uncontended ring is a single RMW; the mutex
/// and condvar are touched only while the parked bit is set. See the
/// module docs for the park protocol and why the second sweep after
/// [`Doorbell::prepare_park`] is mandatory.
pub struct Doorbell {
    word: AtomicU64,
    m: Mutex<()>,
    cv: Condvar,
}

impl Default for Doorbell {
    fn default() -> Self {
        Self::new()
    }
}

impl Doorbell {
    pub fn new() -> Self {
        Doorbell { word: AtomicU64::new(0), m: Mutex::new(()), cv: Condvar::new() }
    }

    /// Signals the parker that new work may exist. Call *after* publishing
    /// the work (e.g. after `Producer::push` returns).
    pub fn ring(&self) {
        // ordering: AcqRel — the release half publishes this ringer's lane
        // stores into the word's modification order so the parker's acquire
        // RMW in prepare_park() joins them; the acquire half chains earlier
        // ringers' clocks forward for the same reason.
        let prev = self.word.fetch_add(2, Ordering::AcqRel);
        if prev & 1 == 1 {
            // Parker is (or is about to be) asleep. Taking the mutex before
            // notifying serializes with the parker's check-then-wait, so
            // the notify cannot slip between its word check and its wait.
            drop(self.m.lock().unwrap_or_else(PoisonError::into_inner));
            self.cv.notify_all();
        }
    }

    /// Announces intent to park and returns the token to park on. The
    /// caller MUST re-check for work between this and [`Doorbell::park`]
    /// (and call [`Doorbell::cancel_park`] instead if it finds any): this
    /// RMW is the acquire edge that makes pre-announcement work visible.
    #[must_use]
    pub fn prepare_park(&self) -> u64 {
        // ordering: AcqRel — the acquire half joins the release clock of
        // every ring() already in the modification order, guaranteeing the
        // mandatory re-sweep sees any element published before its ring;
        // the release half publishes the parked bit's position in the
        // order so later ringers know to notify.
        self.word.fetch_add(1, Ordering::AcqRel).wrapping_add(1)
    }

    /// Withdraws a [`Doorbell::prepare_park`] announcement (parked bit off).
    pub fn cancel_park(&self) {
        // ordering: AcqRel — flips the word back to even and joins any
        // rings that raced with the aborted park attempt.
        self.word.fetch_add(1, Ordering::AcqRel);
    }

    /// Blocks until some ring moves the word past `token`. The parked bit
    /// is cleared on return.
    pub fn park(&self, token: u64) {
        let mut g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
        // ordering: Acquire — pairs with ring()'s release RMW: leaving the
        // loop because the word moved past the token makes the ringer's
        // lane stores visible to the sweep that follows the park.
        while self.word.load(Ordering::Acquire) == token {
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        drop(g);
        self.cancel_park();
    }

    /// Like [`Doorbell::park`] but gives up after `dur`. Returns true when
    /// the wait ended by timeout rather than a ring.
    pub fn park_timeout(&self, token: u64, dur: Duration) -> bool {
        let mut g = self.m.lock().unwrap_or_else(PoisonError::into_inner);
        let mut timed_out = false;
        // ordering: Acquire — same pairing as park(): see the rationale
        // there.
        while self.word.load(Ordering::Acquire) == token {
            let (ng, res) = self.cv.wait_timeout(g, dur).unwrap_or_else(PoisonError::into_inner);
            g = ng;
            if res.timed_out() {
                timed_out = true;
                break;
            }
        }
        drop(g);
        self.cancel_park();
        timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::sync::Arc as StdArc;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(3); // rounds up to 4
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(PushError::Full(99)));
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
        // Wrap around the slot array a few times.
        for round in 0..3 {
            for i in 0..3 {
                tx.push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn disconnect_is_observed_on_both_sides() {
        let (mut tx, rx) = spsc::<u8>(2);
        assert!(!tx.is_closed());
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.push(7), Err(PushError::Disconnected(7)));

        let (tx, mut rx) = spsc::<u8>(2);
        let mut tx = tx;
        tx.push(1).unwrap();
        drop(tx);
        // Producer gone but an element remains: not closed yet.
        assert!(!rx.is_closed());
        assert_eq!(rx.pop(), Some(1));
        assert!(rx.is_closed());
    }

    #[test]
    fn dropping_the_ring_drops_buffered_elements() {
        #[derive(Debug)]
        struct Counted(StdArc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::Relaxed);
            }
        }
        let drops = StdArc::new(AtomicUsize::new(0));
        let (mut tx, mut rx) = spsc::<Counted>(4);
        for _ in 0..3 {
            tx.push(Counted(drops.clone())).unwrap();
        }
        drop(rx.pop()); // one reclaimed by pop
        assert_eq!(drops.load(StdOrdering::Relaxed), 1);
        drop(tx);
        drop(rx); // last Arc drains the remaining two
        assert_eq!(drops.load(StdOrdering::Relaxed), 3);
    }

    #[test]
    fn doorbell_wakes_parked_thread() {
        let bell = StdArc::new(Doorbell::new());
        let (mut tx, mut rx) = spsc::<u64>(8);
        let b2 = bell.clone();
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                while let Some(v) = rx.pop() {
                    got.push(v);
                }
                if got.len() == 100 {
                    return got;
                }
                let token = b2.prepare_park();
                if rx.is_empty() {
                    b2.park(token);
                } else {
                    b2.cancel_park();
                }
            }
        });
        for i in 0..100u64 {
            loop {
                match tx.push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Disconnected(_)) => panic!("consumer died"),
                }
            }
            bell.ring();
        }
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn park_timeout_expires_without_a_ring() {
        let bell = Doorbell::new();
        let token = bell.prepare_park();
        assert!(bell.park_timeout(token, Duration::from_millis(5)));
        // A ring after prepare_park moves the word past the token, so the
        // park returns immediately without timing out.
        let token = bell.prepare_park();
        bell.ring();
        assert!(!bell.park_timeout(token, Duration::from_secs(30)));
    }
}
