//! Deterministic RNG plumbing.
//!
//! Every randomized component (workload generators, clients, clustering
//! initialization) takes a `u64` seed and derives independent streams with
//! [`derive_seed`], so that every experiment in the repo is bit-reproducible.

use crate::value::splitmix64;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a small, fast, seeded RNG.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Mixing through SplitMix64 keeps sibling streams (e.g. one per client
/// thread) statistically independent even for adjacent labels.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    splitmix64(parent ^ splitmix64(stream.wrapping_add(0xa076_1d64_78bd_642f)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ() {
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        assert_ne!(derive_seed(8, 0), s0);
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
    }
}
