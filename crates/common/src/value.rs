//! The dynamic value type flowing through stored procedures, queries, rows,
//! traces, and feature extraction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically-typed value.
///
/// OLTP stored procedures exchange scalar parameters and (per the paper,
/// §4.1) *array* parameters whose elements are treated as independent
/// parameters by the parameter-mapping machinery. Monetary quantities are
/// stored as integer cents so that `Value` is `Eq + Hash + Ord`, which the
/// Markov-model vertex keys and parameter-mapping comparisons rely on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for money, in cents).
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Array parameter; elements are addressed individually by mappings.
    Array(Vec<Value>),
}

impl Value {
    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the integer payload or panics; for engine-internal code where
    /// the catalog guarantees the type.
    pub fn expect_int(&self) -> i64 {
        self.as_int().unwrap_or_else(|| panic!("expected Int, got {self:?}"))
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(vs) => Some(vs),
            _ => None,
        }
    }

    /// True if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Length of the array, or `None` for non-array values. This is the
    /// `ARRAYLENGTH` feature from Table 1 of the paper.
    pub fn array_len(&self) -> Option<usize> {
        self.as_array().map(<[Value]>::len)
    }

    /// A stable 64-bit hash of the value, used by the `HASHVALUE` feature and
    /// by hash-partitioning. Deliberately *not* the std `Hash` so that it is
    /// stable across runs and platforms.
    pub fn stable_hash(&self) -> u64 {
        match self {
            Value::Null => 0x9e3779b97f4a7c15,
            Value::Int(v) => splitmix64(*v as u64),
            Value::Str(s) => {
                let mut h = 0xcbf29ce484222325u64;
                for b in s.as_bytes() {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x100000001b3);
                }
                splitmix64(h)
            }
            Value::Array(vs) => {
                let mut h = 0x9e3779b97f4a7c15u64;
                for v in vs {
                    h = splitmix64(h ^ v.stable_hash());
                }
                h
            }
        }
    }

    /// The home partition of a partitioning-column value in a cluster of
    /// `num_partitions`: integers route by modulo so consecutive ids spread
    /// round-robin (the paper's TPC-C setup, §2.1), everything else by
    /// [`Value::stable_hash`]. This is THE routing rule — storage placement,
    /// catalog partition estimation, and the trace resolvers all call it, so
    /// they can never disagree about where a row lives.
    #[inline]
    pub fn home_partition(&self, num_partitions: u32) -> u32 {
        match self {
            Value::Int(i) => (i.unsigned_abs() % u64::from(num_partitions)) as u32,
            other => (other.stable_hash() % u64::from(num_partitions)) as u32,
        }
    }
}

/// SplitMix64 finalizer: cheap, well-mixed, stable across platforms.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Array(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Self {
        Value::Array(v.into_iter().map(Value::Int).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(vec![1i64, 2, 3]).array_len(), Some(3));
        assert_eq!(Value::Int(1).array_len(), None);
    }

    #[test]
    fn stable_hash_is_stable_and_distinguishes() {
        assert_eq!(Value::Int(42).stable_hash(), Value::Int(42).stable_hash());
        assert_ne!(Value::Int(42).stable_hash(), Value::Int(43).stable_hash());
        assert_ne!(Value::from("a").stable_hash(), Value::from("b").stable_hash());
        // Array hash depends on order.
        assert_ne!(
            Value::from(vec![1i64, 2]).stable_hash(),
            Value::from(vec![2i64, 1]).stable_hash()
        );
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
        assert_eq!(Value::from(vec![1i64, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn serde_round_trip() {
        let v = Value::Array(vec![Value::Int(1), Value::Null, Value::from("s")]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs =
            [Value::from("b"), Value::Int(2), Value::Null, Value::Int(1), Value::from("a")];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(1));
    }
}
