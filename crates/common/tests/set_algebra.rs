//! Deterministic unit tests for `PartitionSet` set algebra (checked against
//! `BTreeSet` as the reference model) and for `Value` ordering / hashing /
//! serialization round-trips. Complements the randomized coverage in the
//! workspace-level `tests/proptests.rs`.

use common::{seeded_rng, FxHashMap, PartitionSet, Value};
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

fn model(s: PartitionSet) -> BTreeSet<u32> {
    s.iter().collect()
}

fn from_model(m: &BTreeSet<u32>) -> PartitionSet {
    PartitionSet::from_iter(m.iter().copied())
}

#[test]
fn algebra_matches_btreeset_reference() {
    let mut rng = seeded_rng(0x5e7_a15e);
    for _ in 0..500 {
        let a: BTreeSet<u32> = (0..rng.gen_range(0..20)).map(|_| rng.gen_range(0..64)).collect();
        let b: BTreeSet<u32> = (0..rng.gen_range(0..20)).map(|_| rng.gen_range(0..64)).collect();
        let (sa, sb) = (from_model(&a), from_model(&b));

        assert_eq!(sa.len() as usize, a.len());
        assert_eq!(model(sa.union(sb)), a.union(&b).copied().collect());
        assert_eq!(model(sa.intersect(sb)), a.intersection(&b).copied().collect());
        assert_eq!(model(sa.difference(sb)), a.difference(&b).copied().collect());
        assert_eq!(sa.is_subset(sb), a.is_subset(&b));
        for p in 0..64 {
            assert_eq!(sa.contains(p), a.contains(&p));
        }
        // iter() yields ascending order, mirroring BTreeSet iteration.
        let via_iter: Vec<u32> = sa.iter().collect();
        let sorted: Vec<u32> = a.iter().copied().collect();
        assert_eq!(via_iter, sorted);
        assert_eq!(sa.first(), a.first().copied());
    }
}

#[test]
fn algebra_identities() {
    let u = PartitionSet::all(64);
    let sets = [
        PartitionSet::EMPTY,
        PartitionSet::single(0),
        PartitionSet::single(63),
        PartitionSet::all(1),
        PartitionSet::all(64),
        PartitionSet::from_iter([1, 5, 9, 33]),
    ];
    for &s in &sets {
        assert_eq!(s.union(PartitionSet::EMPTY), s);
        assert_eq!(s.intersect(u), s);
        assert_eq!(s.intersect(PartitionSet::EMPTY), PartitionSet::EMPTY);
        assert_eq!(s.difference(PartitionSet::EMPTY), s);
        assert_eq!(s.difference(s), PartitionSet::EMPTY);
        assert_eq!(s.union(s), s);
        assert!(PartitionSet::EMPTY.is_subset(s));
        assert!(s.is_subset(u));
        assert_eq!(s.is_single(), s.len() == 1);
    }
    for &a in &sets {
        for &b in &sets {
            assert_eq!(a.union(b), b.union(a));
            assert_eq!(a.intersect(b), b.intersect(a));
            // A \ B = A ∩ ¬B ⇒ (A \ B) ∪ (A ∩ B) = A.
            assert_eq!(a.difference(b).union(a.intersect(b)), a);
        }
    }
}

#[test]
fn insert_remove_roundtrip() {
    let mut s = PartitionSet::EMPTY;
    let mut m = BTreeSet::new();
    let mut rng = seeded_rng(77);
    for _ in 0..2000 {
        let p = rng.gen_range(0..64u32);
        if rng.gen_bool(0.5) {
            s.insert(p);
            m.insert(p);
        } else {
            s.remove(p);
            m.remove(&p);
        }
        assert_eq!(model(s), m);
    }
}

// ---------------------------------------------------------------------------
// Value ordering and hashing
// ---------------------------------------------------------------------------

fn sample_values() -> Vec<Value> {
    vec![
        Value::Null,
        Value::Int(i64::MIN),
        Value::Int(-1),
        Value::Int(0),
        Value::Int(1),
        Value::Int(i64::MAX),
        Value::Str(String::new()),
        Value::Str("a".into()),
        Value::Str("ab".into()),
        Value::Str("Ω-unicode".into()),
        Value::Array(vec![]),
        Value::Array(vec![Value::Int(1)]),
        Value::Array(vec![Value::Int(1), Value::Str("x".into())]),
        Value::Array(vec![Value::Array(vec![Value::Null])]),
    ]
}

fn std_hash<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

#[test]
fn value_ordering_is_total_and_consistent() {
    let values = sample_values();
    for a in &values {
        assert_eq!(a.cmp(a), std::cmp::Ordering::Equal);
        for b in &values {
            // Antisymmetry and Eq-consistency.
            assert_eq!(a.cmp(b), b.cmp(a).reverse());
            assert_eq!(a.cmp(b) == std::cmp::Ordering::Equal, a == b);
            // Ord and PartialOrd must agree.
            assert_eq!(a.partial_cmp(b), Some(a.cmp(b)));
            for c in &values {
                if a.cmp(b) != std::cmp::Ordering::Greater
                    && b.cmp(c) != std::cmp::Ordering::Greater
                {
                    assert_ne!(a.cmp(c), std::cmp::Ordering::Greater, "{a:?} ≤ {b:?} ≤ {c:?}");
                }
            }
        }
    }
    // Sorting is stable under re-sorting (total order sanity).
    let mut sorted = values.clone();
    sorted.sort();
    let mut twice = sorted.clone();
    twice.sort();
    assert_eq!(sorted, twice);
}

#[test]
fn value_hash_respects_equality() {
    let values = sample_values();
    for v in &values {
        assert_eq!(std_hash(v), std_hash(&v.clone()), "clone must hash identically: {v:?}");
        assert_eq!(v.stable_hash(), v.clone().stable_hash());
    }
    // Equal values must collide; distinct sample values should not (fixed
    // inputs, so a legitimate collision would be astonishing) — except
    // `Null` vs `Array([])`, which share a sentinel by construction.
    let known_collision = |a: &Value, b: &Value| {
        matches!(a, Value::Null) && matches!(b, Value::Array(v) if v.is_empty())
    };
    for a in &values {
        for b in &values {
            if a == b {
                assert_eq!(std_hash(a), std_hash(b));
            } else if !known_collision(a, b) && !known_collision(b, a) {
                assert_ne!(a.stable_hash(), b.stable_hash(), "{a:?} vs {b:?}");
            }
        }
    }
    // Values must work as hash-map keys through clone round-trips.
    let mut map: FxHashMap<Value, usize> = FxHashMap::default();
    for (i, v) in values.iter().enumerate() {
        map.insert(v.clone(), i);
    }
    for (i, v) in values.iter().enumerate() {
        assert_eq!(map.get(&v.clone()), Some(&i));
    }
}

#[test]
fn value_json_roundtrip() {
    for v in sample_values() {
        let json = serde_json::to_string(&v).expect("serialize");
        let back: Value = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, v, "round-trip through {json}");
    }
}
