//! Model-checked publish/pin protocol of [`common::epoch::EpochCell`] (see
//! DESIGN.md §"Concurrency model & checking").
//!
//! The module docs on `epoch.rs` make a three-case memory-ordering argument
//! for why readers never observe a torn snapshot. These models check each
//! leg of that argument and — via the seeded twins — that removing any one
//! ingredient (build-before-publish, the `Release` publication store, the
//! writer mutex) produces a failure the checker catches.

use checkers::sync::atomic::{AtomicU64, Ordering};
use checkers::sync::{Arc, Mutex};
use checkers::{explore, FailureKind, Options, Report};

fn opts() -> Options {
    Options::default()
}

fn assert_pass(report: &Report, what: &str) {
    assert!(report.passed(), "{what} must verify: {report}");
    eprintln!("[model::{what}] {report}");
}

// ===========================================================================
// 1. The full cell: double-buffered slots + epoch counter + writer mutex
//    (mirrors EpochCell::{store, load_with_epoch} line for line)
// ===========================================================================

/// `EpochCell` with the `Arc<T>` snapshot replaced by a `(u64, u64)` pair
/// whose halves must always agree — the model's stand-in for "a snapshot
/// fully constructed before publication".
struct CellModel {
    epoch: AtomicU64,
    slots: [Mutex<(u64, u64)>; 2],
    writer: Mutex<()>,
}

impl CellModel {
    fn new() -> Self {
        CellModel {
            epoch: AtomicU64::new(0),
            slots: [Mutex::new((0, 0)), Mutex::new((0, 0))],
            writer: Mutex::new(()),
        }
    }

    /// `EpochCell::store`. `serialize_writers = false` seeds the bug the
    /// real code's writer mutex exists to exclude — and is the reason the
    /// epoch *read* below is safe at `Relaxed` (the `// ordering:` comment
    /// in epoch.rs cites this model).
    fn store(&self, v: u64, serialize_writers: bool) -> u64 {
        let _w = serialize_writers.then(|| self.writer.lock().unwrap());
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        *self.slots[(next & 1) as usize].lock().unwrap() = (v, v);
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// `EpochCell::load_with_epoch`.
    fn load(&self) -> (u64, (u64, u64)) {
        let e = self.epoch.load(Ordering::Acquire);
        let snap = *self.slots[(e & 1) as usize].lock().unwrap();
        (e, snap)
    }
}

/// One reader step: the snapshot must be coherent (halves agree) and must
/// belong to the slot the loaded epoch points at (value published at epoch
/// `v` has `v`'s parity; a racing writer may have replaced the slot with
/// epoch `e + 2`, which keeps the parity).
fn check_read(e: u64, snap: (u64, u64)) {
    assert_eq!(snap.0, snap.1, "torn snapshot at epoch {e}: {snap:?}");
    assert_eq!(snap.0 % 2, e % 2, "slot holds a foreign epoch's value");
}

#[test]
fn epoch_publish_pin_passes() {
    let r = explore(opts(), |model| {
        let cell = Arc::new(CellModel::new());
        let w = cell.clone();
        model.thread(move || {
            w.store(1, true);
            w.store(2, true);
        });
        let r1 = cell.clone();
        model.thread(move || {
            let (e1, s1) = r1.load();
            check_read(e1, s1);
            let (e2, s2) = r1.load();
            check_read(e2, s2);
            assert!(e2 >= e1, "epoch went backwards: {e1} -> {e2}");
        });
        let r2 = cell.clone();
        model.thread(move || {
            let (e, s) = r2.load();
            check_read(e, s);
        });
        let c = cell.clone();
        model.after(move || {
            assert_eq!(c.epoch.load(Ordering::Relaxed), 2);
            assert_eq!(*c.slots[0].lock().unwrap(), (2, 2));
            assert_eq!(*c.slots[1].lock().unwrap(), (1, 1));
        });
    });
    assert_pass(&r, "epoch_publish_pin");
}

#[test]
fn epoch_serialized_writers_pass() {
    let r = explore(opts(), |model| {
        let cell = Arc::new(CellModel::new());
        for v in [1u64, 2] {
            let w = cell.clone();
            model.thread(move || {
                w.store(v, true);
            });
        }
        let c = cell.clone();
        model.after(move || {
            // Two serialized publications always advance the epoch twice.
            assert_eq!(c.epoch.load(Ordering::Relaxed), 2, "a publication was lost");
            let s0 = *c.slots[0].lock().unwrap();
            let s1 = *c.slots[1].lock().unwrap();
            assert_eq!(s0.0, s0.1);
            assert_eq!(s1.0, s1.1);
        });
    });
    assert_pass(&r, "epoch_serialized_writers");
}

#[test]
fn seeded_unserialized_writers_lose_an_epoch() {
    // Without the writer mutex both writers can read epoch 0, both compute
    // `next = 1`, and one publication overwrites the other: exactly why the
    // Relaxed epoch read in EpochCell::store is only sound under the mutex.
    let r = explore(opts(), |model| {
        let cell = Arc::new(CellModel::new());
        for v in [1u64, 2] {
            let w = cell.clone();
            model.thread(move || {
                w.store(v, false);
            });
        }
        let c = cell.clone();
        model.after(move || {
            assert_eq!(c.epoch.load(Ordering::Relaxed), 2, "a publication was lost");
        });
    });
    let f = r.failure().expect("unserialized writers must lose an epoch");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("a publication was lost"), "message: {}", f.message);
    eprintln!("[model::seeded_unserialized_writers] {r}");
}

// ===========================================================================
// 2. The publication edge in isolation: a two-word payload built before the
//    epoch store that publishes it (the Release/Acquire leg of the argument)
// ===========================================================================

struct PayloadModel {
    epoch: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
}

fn payload_scenario(
    publish_mid_build: bool,
    relaxed_publish: bool,
) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let p = Arc::new(PayloadModel {
            epoch: AtomicU64::new(0),
            lo: AtomicU64::new(0),
            hi: AtomicU64::new(0),
        });
        let w = p.clone();
        model.thread(move || {
            w.lo.store(7, Ordering::Relaxed);
            if publish_mid_build {
                // Seeded: publish before the snapshot is fully built.
                w.epoch.store(1, Ordering::Release);
                w.hi.store(7, Ordering::Relaxed);
            } else {
                w.hi.store(7, Ordering::Relaxed);
                let ord = if relaxed_publish {
                    // Seeded: drop the Release on the publication store.
                    Ordering::Relaxed
                } else {
                    Ordering::Release
                };
                w.epoch.store(1, ord);
            }
        });
        let r = p.clone();
        model.thread(move || {
            // ordering: Acquire pairs with the writer's Release publication
            // (the same edge EpochCell::load_with_epoch relies on).
            if r.epoch.load(Ordering::Acquire) == 1 {
                let lo = r.lo.load(Ordering::Relaxed);
                let hi = r.hi.load(Ordering::Relaxed);
                assert_eq!((lo, hi), (7, 7), "published snapshot observed torn");
            }
        });
    }
}

#[test]
fn payload_publication_passes() {
    let r = explore(opts(), payload_scenario(false, false));
    assert_pass(&r, "payload_publication");
}

#[test]
fn seeded_publish_before_build_is_caught() {
    let r = explore(opts(), payload_scenario(true, false));
    let f = r.failure().expect("publishing mid-build must tear the snapshot");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("torn"), "message: {}", f.message);
    eprintln!("[model::seeded_publish_mid_build] {r}");
}

#[test]
fn seeded_relaxed_publication_is_caught() {
    let r = explore(opts(), payload_scenario(false, true));
    let f = r.failure().expect("a Relaxed publication store must tear the snapshot");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("torn"), "message: {}", f.message);
    eprintln!("[model::seeded_relaxed_publication] {r}");
}
