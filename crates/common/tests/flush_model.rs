//! Model-checked flush-sequencer protocol of [`common::flush`] (see the
//! module docs there for the leader/epoch protocol this file exhausts).
//!
//! Two layers, mirroring `ring_model.rs`:
//!
//! * **Compact reimplementation** (always compiled): the sequencer with
//!   the *device* as a model atomic so the checker can observe a flush
//!   that was claimed durable before the device write landed — the real
//!   sequencer's device op is a sleep the model cannot see — plus seeded
//!   twins: publishing `durable` before the device operation (lost
//!   flush, caught as a panic) and a leader that skips `notify_all`
//!   (stranded waiter, caught as a deadlock).
//! * **The real `common::flush`** (under `--features check`): the facade
//!   resolves to `checkers::sync`, so the models drive the production
//!   `FlushSequencer` itself through `wait_durable_with`, with a
//!   recording closure in place of the sleep — no lost flush, no
//!   overlapping (double) device operations, and group closes coalescing
//!   only with genuinely in-flight flushes.
//!
//! Properties checked:
//! * **No lost flush** — a waiter returns only after a device operation
//!   that covers its ticket has completed.
//! * **No double flush** — device operations never overlap (one leader
//!   per epoch; the `in_device` counter must never exceed 1).
//! * **FIFO ack order after a shared flush** — `durable` is a watermark:
//!   when a waiter with ticket `t` is released, every ticket `<= t` is
//!   durable too, so acks release in ticket order, never leapfrogging.

use checkers::sync::atomic::{AtomicU64, Ordering};
use checkers::sync::{Arc, Condvar, Mutex};
use checkers::{explore, FailureKind, Options, Report};

fn opts() -> Options {
    Options::default()
}

fn assert_pass(report: &Report, what: &str) {
    assert!(report.passed(), "{what} must verify: {report}");
    eprintln!("[model::{what}] {report}");
}

// ===========================================================================
// 1. Reimplemented sequencer with a model-atomic device. Mirrors
//    common::flush line for line; the `publish_early` and `notify`
//    parameters seed the two bugs the protocol comments warn about.
// ===========================================================================

/// Bookkeeping under the mutex, as in the real `State` (counters elided —
/// they are plain arithmetic the unit tests already pin).
struct St {
    next_epoch: u64,
    durable: u64,
    flushing: bool,
}

/// The sequencer with its *device* visible to the checker: `device` is
/// the highest epoch actually written to stable storage, `in_device`
/// counts threads inside the device operation (must never exceed 1).
struct SeqModel {
    m: Mutex<St>,
    cv: Condvar,
    device: AtomicU64,
    in_device: AtomicU64,
}

impl SeqModel {
    fn new() -> Self {
        SeqModel {
            m: Mutex::new(St { next_epoch: 1, durable: 0, flushing: false }),
            cv: Condvar::new(),
            device: AtomicU64::new(0),
            in_device: AtomicU64::new(0),
        }
    }

    /// `FlushSequencer::enqueue`.
    fn enqueue(&self) -> u64 {
        self.m.lock().unwrap().next_epoch
    }

    /// `FlushSequencer::wait_durable_with`. `publish_early = true` seeds
    /// the lost-flush bug (durability claimed before the device write
    /// lands); `notify = false` seeds the stranded-waiter bug.
    fn wait(&self, ticket: u64, publish_early: bool, notify: bool) {
        let mut s = self.m.lock().unwrap();
        loop {
            if s.durable >= ticket {
                return;
            }
            if s.flushing {
                s = self.cv.wait(s).unwrap();
                continue;
            }
            let epoch = s.next_epoch;
            s.next_epoch += 1;
            s.flushing = true;
            if publish_early {
                // BUG twin: waiters may now release before the device
                // write below has happened.
                s.durable = epoch;
            }
            drop(s);
            let was = self.in_device.fetch_add(1, Ordering::AcqRel);
            assert_eq!(was, 0, "double flush: overlapping device operations");
            // Publication to post-wait readers rides the mutex, as the
            // real device's side effects would.
            self.device.store(epoch, Ordering::Relaxed);
            self.in_device.store(0, Ordering::Release);
            s = self.m.lock().unwrap();
            s.flushing = false;
            if !publish_early && s.durable < epoch {
                s.durable = epoch;
            }
            if notify {
                self.cv.notify_all();
            }
            return;
        }
    }
}

/// Each of `writers` threads grabs a ticket and waits for durability,
/// then asserts its ticket's flush actually reached the device — the
/// no-lost-flush / watermark property (a watermark device count `>=
/// ticket` also implies every earlier ticket is durable, i.e. FIFO ack
/// order after a shared flush).
fn seq_scenario(writers: u64, publish_early: bool, notify: bool) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let seq = Arc::new(SeqModel::new());
        for _ in 0..writers {
            let s = seq.clone();
            model.thread(move || {
                let ticket = s.enqueue();
                s.wait(ticket, publish_early, notify);
                let dev = s.device.load(Ordering::Relaxed);
                assert!(dev >= ticket, "lost flush: device at {dev} < ticket {ticket}");
            });
        }
    }
}

#[test]
fn model_sequencer_coalesces_without_losing_flushes() {
    let r = explore(opts(), seq_scenario(2, false, true));
    assert_pass(&r, "seq_no_lost_flush");
}

#[test]
fn seeded_early_durable_publication_loses_a_flush() {
    // With durable published before the device write, a second waiter can
    // observe its ticket "durable", return, and find the device behind —
    // a commit reported durable that a crash would lose.
    let r = explore(opts(), seq_scenario(2, true, true));
    let f = r.failure().expect("early durability publication must lose a flush");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("lost flush"), "message: {}", f.message);
    eprintln!("[model::seeded_early_durable] {r}");
}

#[test]
fn seeded_skipped_notify_strands_a_waiter() {
    // A leader that completes its flush without notify_all leaves any
    // waiter blocked on the condvar with nobody left to wake it — the
    // checker reports the stuck schedule as a deadlock.
    let r = explore(opts(), seq_scenario(2, false, false));
    let f = r.failure().expect("skipping notify_all must strand a waiter");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[model::seeded_skipped_notify] {r}");
}

// ===========================================================================
// 2. The real common::flush, driven through the facade (check feature).
// ===========================================================================

#[cfg(feature = "check")]
mod real_seq {
    use super::{assert_pass, opts};
    use checkers::explore;
    use checkers::sync::atomic::{AtomicU64, Ordering};
    use checkers::sync::Arc;
    use common::flush::FlushSequencer;

    #[test]
    fn real_sequencer_never_loses_or_doubles_a_flush() {
        let r = explore(opts(), |model| {
            let seq = Arc::new(FlushSequencer::new());
            let device = Arc::new(AtomicU64::new(0));
            let in_device = Arc::new(AtomicU64::new(0));
            for _ in 0..2 {
                let (s, d, g) = (seq.clone(), device.clone(), in_device.clone());
                model.thread(move || {
                    let ticket = s.enqueue();
                    s.wait_durable_with(ticket, |epoch| {
                        let was = g.fetch_add(1, Ordering::AcqRel);
                        assert_eq!(was, 0, "double flush: overlapping device ops");
                        d.store(epoch, Ordering::Relaxed);
                        g.store(0, Ordering::Release);
                    });
                    // No lost flush, and (watermark) FIFO ack order.
                    let dev = d.load(Ordering::Relaxed);
                    assert!(dev >= ticket, "lost flush: device {dev} < ticket {ticket}");
                });
            }
        });
        assert_pass(&r, "real_seq_no_lost_flush");
    }

    #[test]
    fn real_group_close_coalesces_only_with_an_inflight_flush() {
        let r = explore(opts(), |model| {
            let seq = Arc::new(FlushSequencer::new());
            let s1 = seq.clone();
            model.thread(move || {
                let ticket = s1.enqueue();
                let led = s1.wait_durable_with(ticket, |_epoch| {});
                assert!(led, "sole durability waiter must lead its flush");
            });
            let s2 = seq.clone();
            model.thread(move || {
                // A worker group close never blocks; if it reports riding
                // a flush, one must actually be in flight at that moment
                // (flush_in_progress is advisory, the mutexed answer is
                // the authoritative one commit_group returns).
                let rode = s2.commit_group();
                let (total, coalesced) = s2.counters();
                assert!(total >= 1);
                assert!(coalesced <= total, "coalesced demands exceed demands");
                let _ = rode;
            });
        });
        assert_pass(&r, "real_group_close");
    }
}
