//! Model-checked SPSC ring + doorbell protocols of [`common::ring`] (see
//! the module docs there for the park protocol this file exhausts).
//!
//! Two layers:
//!
//! * **Compact reimplementations** (always compiled): the ring with its
//!   slots as *model atomics* so the checker can observe a mispublished
//!   slot — the real ring's slots are plain memory the model cannot see —
//!   plus seeded twins: a `Relaxed` tail publication (stale slot read,
//!   caught as a panic) and a doorbell consumer that skips the mandatory
//!   second sweep (lost wakeup, caught as a deadlock).
//! * **The real `common::ring`** (under `--features check`): the facade
//!   resolves to `checkers::sync`, so these models drive the production
//!   `spsc`/`Doorbell` code itself — in-order delivery under the park
//!   protocol, the `park_timeout` branch, and the producer-drop handshake
//!   (`is_closed` must not report closed-and-empty while a final element
//!   is in flight).

use checkers::sync::atomic::{AtomicU64, Ordering};
use checkers::sync::{Arc, Condvar, Mutex};
use checkers::{explore, FailureKind, Options, Report};

fn opts() -> Options {
    Options::default()
}

fn assert_pass(report: &Report, what: &str) {
    assert!(report.passed(), "{what} must verify: {report}");
    eprintln!("[model::{what}] {report}");
}

// ===========================================================================
// 1. Reimplemented ring with model-atomic slots, + the doorbell word.
//    Mirrors common::ring line for line; the `release_tail` and `resweep`
//    parameters seed the two bugs the protocol comments warn about.
// ===========================================================================

/// Capacity-2 SPSC ring. Slots are model atomics (data stored `Relaxed`)
/// so publication rides entirely on the tail store's ordering — exactly
/// the role the real ring's non-atomic slot writes play.
struct RingModel {
    head: AtomicU64,
    tail: AtomicU64,
    slots: [AtomicU64; 2],
}

impl RingModel {
    fn new() -> Self {
        RingModel {
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots: [AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// `Producer::push`. `release_tail = false` seeds the bug: the slot
    /// write is then allowed to surface after the tail that publishes it.
    fn push(&self, v: u64, release_tail: bool) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > 1 {
            return false;
        }
        // Data rides the tail store's Release edge, like the real ring's
        // plain-memory slot write.
        self.slots[(tail & 1) as usize].store(v, Ordering::Relaxed);
        let ord = if release_tail { Ordering::Release } else { Ordering::Relaxed };
        self.tail.store(tail.wrapping_add(1), ord);
        true
    }

    /// `Consumer::pop`.
    fn pop(&self) -> Option<u64> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = self.slots[(head & 1) as usize].load(Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) == self.tail.load(Ordering::Acquire)
    }
}

/// `common::ring::Doorbell`: bit 0 = parked, upper bits = ring count.
struct BellModel {
    word: AtomicU64,
    m: Mutex<()>,
    cv: Condvar,
}

impl BellModel {
    fn new() -> Self {
        BellModel { word: AtomicU64::new(0), m: Mutex::new(()), cv: Condvar::new() }
    }

    fn ring(&self) {
        let prev = self.word.fetch_add(2, Ordering::AcqRel);
        if prev & 1 == 1 {
            drop(self.m.lock().unwrap());
            self.cv.notify_all();
        }
    }

    fn prepare_park(&self) -> u64 {
        self.word.fetch_add(1, Ordering::AcqRel).wrapping_add(1)
    }

    fn cancel_park(&self) {
        self.word.fetch_add(1, Ordering::AcqRel);
    }

    fn park(&self, token: u64) {
        let mut g = self.m.lock().unwrap();
        while self.word.load(Ordering::Acquire) == token {
            g = self.cv.wait(g).unwrap();
        }
        drop(g);
        self.cancel_park();
    }
}

/// Producer pushes `1..=n` (ringing after each publish); consumer drains
/// under the park protocol. `resweep = false` seeds the lost-wakeup bug:
/// parking without re-checking after `prepare_park` misses an element whose
/// ring landed before the parked bit went up.
fn ring_scenario(n: u64, release_tail: bool, resweep: bool) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let ring = Arc::new(RingModel::new());
        let bell = Arc::new(BellModel::new());
        let (r_p, b_p) = (ring.clone(), bell.clone());
        model.thread(move || {
            let mut v = 1;
            while v <= n {
                if r_p.push(v, release_tail) {
                    b_p.ring();
                    v += 1;
                } else {
                    // Ring full: wait for the consumer to drain. The model
                    // has no producer-side doorbell, so just let the
                    // scheduler run the consumer (capacity 2, n <= 2 in
                    // every scenario keeps this branch unreachable).
                    unreachable!("scenarios keep n within ring capacity");
                }
            }
        });
        let (r_c, b_c) = (ring.clone(), bell.clone());
        model.thread(move || {
            let mut got = Vec::new();
            while (got.len() as u64) < n {
                while let Some(v) = r_c.pop() {
                    got.push(v);
                }
                if got.len() as u64 == n {
                    break;
                }
                let token = b_c.prepare_park();
                if resweep && !r_c.is_empty() {
                    b_c.cancel_park();
                    continue;
                }
                b_c.park(token);
            }
            let want: Vec<u64> = (1..=n).collect();
            assert_eq!(got, want, "stale or reordered slot read");
        });
    }
}

#[test]
fn model_ring_delivers_in_order() {
    let r = explore(opts(), ring_scenario(2, true, true));
    assert_pass(&r, "ring_in_order");
}

#[test]
fn seeded_relaxed_tail_reads_a_stale_slot() {
    // Without Release on the tail store, the consumer's Acquire tail load
    // observes the new count with no edge back to the slot write, so the
    // pop is allowed to read the slot's previous (stale) value.
    let r = explore(opts(), ring_scenario(2, false, true));
    let f = r.failure().expect("a Relaxed tail publication must leak a stale slot");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("stale or reordered"), "message: {}", f.message);
    eprintln!("[model::seeded_relaxed_tail] {r}");
}

#[test]
fn seeded_skipped_resweep_loses_the_wakeup() {
    // Park without the post-prepare_park sweep: an element whose ring
    // landed before the parked bit went up is never re-observed, and the
    // producer (already done) will never ring again — the consumer sleeps
    // forever. checkers reports the stuck schedule as a deadlock.
    let r = explore(opts(), ring_scenario(1, true, false));
    let f = r.failure().expect("skipping the second sweep must lose a wakeup");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[model::seeded_skipped_resweep] {r}");
}

// ===========================================================================
// 2. The real common::ring, driven through the facade (check feature).
// ===========================================================================

#[cfg(feature = "check")]
mod real_ring {
    use super::{assert_pass, opts};
    use checkers::explore;
    use checkers::sync::Arc;
    use common::ring::{spsc, Doorbell};
    use std::time::Duration;

    #[test]
    fn real_ring_delivers_in_order_under_the_park_protocol() {
        let r = explore(opts(), |model| {
            // Capacity 4 > the 3 pushes, so the producer never sees Full
            // (a push retry loop would spin, which a model cannot do).
            let (mut tx, mut rx) = spsc::<u64>(4);
            let bell = Arc::new(Doorbell::new());
            let b_p = bell.clone();
            model.thread(move || {
                for v in 1..=3 {
                    tx.push(v).expect("capacity covers all pushes");
                    b_p.ring();
                }
            });
            model.thread(move || {
                let mut got = Vec::new();
                while got.len() < 3 {
                    while let Some(v) = rx.pop() {
                        got.push(v);
                    }
                    if got.len() == 3 {
                        break;
                    }
                    let token = bell.prepare_park();
                    if rx.is_empty() {
                        bell.park(token);
                    } else {
                        bell.cancel_park();
                    }
                }
                assert_eq!(got, vec![1, 2, 3], "lost or reordered elements");
            });
        });
        assert_pass(&r, "real_ring_in_order");
    }

    #[test]
    fn real_park_timeout_always_rechecks_before_sleeping_again() {
        let r = explore(opts(), |model| {
            let (mut tx, mut rx) = spsc::<u64>(2);
            let bell = Arc::new(Doorbell::new());
            let b_p = bell.clone();
            model.thread(move || {
                tx.push(7).expect("capacity covers the push");
                b_p.ring();
            });
            model.thread(move || {
                let mut got = None;
                // The timeout branch is enumerated nondeterministically;
                // cap it at one firing per schedule (then fall back to a
                // blocking park) so the schedule count stays bounded — an
                // always-times-out schedule would spin forever.
                let mut timeout_budget = 1;
                while got.is_none() {
                    got = rx.pop();
                    if got.is_some() {
                        break;
                    }
                    let token = bell.prepare_park();
                    if !rx.is_empty() {
                        bell.cancel_park();
                        continue;
                    }
                    if timeout_budget > 0 {
                        // A spurious timeout must loop back to a sweep,
                        // never exit with the element unread.
                        if bell.park_timeout(token, Duration::from_millis(1)) {
                            timeout_budget -= 1;
                        }
                    } else {
                        bell.park(token);
                    }
                }
                assert_eq!(got, Some(7));
            });
        });
        assert_pass(&r, "real_park_timeout");
    }

    #[test]
    fn real_producer_drop_handshake_never_strands_an_element() {
        let r = explore(opts(), |model| {
            let (mut tx, mut rx) = spsc::<u64>(2);
            let bell = Arc::new(Doorbell::new());
            let b_p = bell.clone();
            model.thread(move || {
                tx.push(1).expect("capacity covers the push");
                b_p.ring();
                drop(tx);
                // The runtime's client teardown rings once more after
                // dropping its lanes so a parked worker can retire them.
                b_p.ring();
            });
            model.thread(move || {
                let mut got = Vec::new();
                loop {
                    while let Some(v) = rx.pop() {
                        got.push(v);
                    }
                    // is_closed is the lane-retirement check: its Acquire
                    // load of producer_alive must order the final element
                    // in, or this exits with `got` short.
                    if rx.is_closed() {
                        break;
                    }
                    let token = bell.prepare_park();
                    if rx.is_empty() && !rx.is_closed() {
                        bell.park(token);
                    } else {
                        bell.cancel_park();
                    }
                }
                assert_eq!(got, vec![1], "final element stranded by the drop handshake");
            });
        });
        assert_pass(&r, "real_producer_drop");
    }
}
