//! Model generation from a workload trace (paper §3.2, construction phase).

use crate::model::{MarkovModel, QueryKind, VertexKey};
use crate::ptable::compute_tables;
use common::{FxHashMap, PartitionSet, ProcId, QueryId};
use trace::{PartitionResolver, TraceRecord};

/// Builds one stored procedure's Markov model from its trace records.
///
/// Construction phase: every record's query sequence is re-resolved against
/// the target cluster configuration (the resolver implements the DBMS's
/// internal partition-estimation API) and walked through the graph, creating
/// vertices and counting edges. Processing phase: edge probabilities are
/// normalized and the per-vertex probability tables pre-computed.
pub fn build_model(
    proc: ProcId,
    records: &[&TraceRecord],
    resolver: &dyn PartitionResolver,
) -> MarkovModel {
    let mut model = MarkovModel::new(proc, resolver.num_partitions());
    for rec in records {
        add_record(&mut model, rec, resolver);
    }
    model.recompute_probabilities();
    compute_tables(&mut model);
    model
}

/// Walks one record through the model, creating vertices/edges as needed.
/// Exposed for incremental/maintenance use.
pub fn add_record(model: &mut MarkovModel, rec: &TraceRecord, resolver: &dyn PartitionResolver) {
    debug_assert_eq!(rec.proc, model.proc);
    let mut prev = PartitionSet::EMPTY;
    let mut counters: FxHashMap<QueryId, u16> = FxHashMap::default();
    let mut cur = model.begin();
    for q in &rec.queries {
        let counter = {
            let c = counters.entry(q.query).or_insert(0);
            let cur_c = *c;
            *c += 1;
            cur_c
        };
        let partitions = resolver.partitions(rec.proc, q.query, &q.params);
        let key =
            VertexKey { kind: QueryKind::Query(q.query), counter, partitions, previous: prev };
        let name = resolver.query_name(rec.proc, q.query);
        let is_write = resolver.is_write(rec.proc, q.query);
        let next = model.intern(key, name, is_write);
        model.add_transition(cur, next, 1);
        prev = prev.union(partitions);
        cur = next;
    }
    let terminal = if rec.aborted { model.abort() } else { model.commit() };
    model.add_transition(cur, terminal, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Value;
    use trace::QueryRecord;

    /// A resolver for a toy procedure: query 0 routes on param 0 (modulo),
    /// query 1 broadcasts; query 2 writes on param 0.
    struct ToyResolver {
        parts: u32,
    }

    impl PartitionResolver for ToyResolver {
        fn partitions(&self, _p: ProcId, q: QueryId, params: &[Value]) -> PartitionSet {
            match q {
                1 => PartitionSet::all(self.parts),
                _ => PartitionSet::single(
                    (params[0].expect_int().unsigned_abs() % u64::from(self.parts)) as u32,
                ),
            }
        }
        fn is_write(&self, _p: ProcId, q: QueryId) -> bool {
            q == 2
        }
        fn query_name(&self, _p: ProcId, q: QueryId) -> String {
            format!("Q{q}")
        }
        fn num_partitions(&self) -> u32 {
            self.parts
        }
    }

    fn rec(queries: Vec<(QueryId, i64)>, aborted: bool) -> TraceRecord {
        TraceRecord {
            proc: 0,
            params: vec![],
            queries: queries
                .into_iter()
                .map(|(q, v)| QueryRecord { query: q, params: vec![Value::Int(v)] })
                .collect(),
            aborted,
        }
    }

    #[test]
    fn single_record_linear_chain() {
        let r = rec(vec![(0, 1), (2, 1)], false);
        let m = build_model(0, &[&r], &ToyResolver { parts: 4 });
        // begin, commit, abort + 2 query states.
        assert_eq!(m.len(), 5);
        // begin -> Q0 with probability 1.
        let b = m.vertex(m.begin());
        assert_eq!(b.edges.len(), 1);
        assert!((b.edges[0].prob - 1.0).abs() < 1e-12);
        // Chain ends at commit.
        let q2 = m.vertices().iter().position(|v| v.name == "Q2").unwrap() as u32;
        assert!(m.vertex(q2).edge_to(m.commit()).is_some());
        assert!(m.vertex(q2).is_write);
    }

    #[test]
    fn counter_distinguishes_repeats() {
        let r = rec(vec![(0, 1), (0, 1)], false);
        let m = build_model(0, &[&r], &ToyResolver { parts: 4 });
        let q0s: Vec<_> = m.vertices().iter().filter(|v| v.name == "Q0").collect();
        assert_eq!(q0s.len(), 2);
        let counters: Vec<u16> = q0s.iter().map(|v| v.key.counter).collect();
        assert!(counters.contains(&0) && counters.contains(&1));
    }

    #[test]
    fn partitions_distinguish_states() {
        // Same query, different partition -> different vertices; the
        // begin vertex's edge probabilities split accordingly.
        let r1 = rec(vec![(0, 0)], false);
        let r2 = rec(vec![(0, 1)], false);
        let r3 = rec(vec![(0, 0)], false);
        let m = build_model(0, &[&r1, &r2, &r3], &ToyResolver { parts: 4 });
        let b = m.vertex(m.begin());
        assert_eq!(b.edges.len(), 2);
        let mut probs: Vec<f64> = b.edges.iter().map(|e| e.prob).collect();
        probs.sort_by(f64::total_cmp);
        assert!((probs[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((probs[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn previous_set_accumulates() {
        let r = rec(vec![(0, 0), (0, 1)], false);
        let m = build_model(0, &[&r], &ToyResolver { parts: 4 });
        let second = m.vertices().iter().find(|v| v.name == "Q0" && v.key.counter == 1).unwrap();
        assert_eq!(second.key.previous, PartitionSet::single(0));
        assert_eq!(second.key.partitions, PartitionSet::single(1));
    }

    #[test]
    fn aborted_record_edges_to_abort() {
        let r = rec(vec![(0, 1)], true);
        let m = build_model(0, &[&r], &ToyResolver { parts: 4 });
        let q = m.vertices().iter().position(|v| v.name == "Q0").unwrap() as u32;
        assert!(m.vertex(q).edge_to(m.abort()).is_some());
        // Abort probability propagates into begin's table.
        assert!((m.vertex(m.begin()).table.abort - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_query_touches_all() {
        let r = rec(vec![(1, 0), (0, 2)], false);
        let m = build_model(0, &[&r], &ToyResolver { parts: 4 });
        let bq = m.vertices().iter().find(|v| v.name == "Q1").unwrap();
        assert_eq!(bq.key.partitions.len(), 4);
        let follow = m.vertices().iter().find(|v| v.name == "Q0").unwrap();
        assert_eq!(follow.key.previous.len(), 4);
    }

    #[test]
    fn empty_transaction_goes_straight_to_terminal() {
        let r = rec(vec![], false);
        let m = build_model(0, &[&r], &ToyResolver { parts: 2 });
        assert!(m.vertex(m.begin()).edge_to(m.commit()).is_some());
    }

    #[test]
    fn hundreds_of_records_stay_compact() {
        // NewOrder-style: the state space is bounded by distinct
        // (query, counter, partitions, previous) combinations, not by the
        // number of records.
        let records: Vec<TraceRecord> =
            (0..500).map(|i| rec(vec![(0, i % 2), (2, i % 2)], false)).collect();
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let m = build_model(0, &refs, &ToyResolver { parts: 2 });
        assert_eq!(m.len(), 3 + 4);
    }
}
