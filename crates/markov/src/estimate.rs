//! Initial execution-path estimation (paper §4.2).
//!
//! Given a new transaction's procedure arguments, Houdini walks the Markov
//! model from `begin`. At each state it enumerates the successor states and
//! predicts each candidate query's partitions through the parameter mapping:
//!
//! * If the mapping resolves the query's routing parameter, the partitions
//!   are *known* regardless of which partition-variant vertices the training
//!   trace happened to contain — so all successor vertices of the same
//!   `(query, counter)` shape merge into one candidate whose probability is
//!   their sum and whose partitions come from the mapping. This is what lets
//!   a model trained on a finite trace generalize to partition combinations
//!   it never saw (the §4.6 state-space explosion would otherwise dead-end
//!   the walk).
//! * If the mapping proves the invocation impossible (an array parameter
//!   shorter than the invocation counter), the transition is invalid.
//! * If the parameter is unmapped (derived from query results, like TATP's
//!   broadcast-then-lookup), the candidate keeps the model's historical
//!   partitions and is only followed when nothing better exists — the
//!   uncertainty the paper discusses in §4.6.
//!
//! Valid candidates win over uncertain ones; within a class the heaviest
//! (renormalized) edge is followed, which makes the confidence coefficient
//! the product of `P(chosen | feasible)` along the path — always-single-
//! partition procedures therefore keep confidence 1.0 and survive any
//! threshold below one (Fig. 13).

use crate::model::{MarkovModel, QueryKind, VertexId};
use common::{FxHashMap, PartitionId, PartitionSet, QueryId, Value};
use mapping::{ProcMapping, Resolve};

/// How a model query maps its parameters to partitions — the slice of the
/// engine catalog that path estimation needs. Implemented by Houdini over
/// the engine's catalog; tests provide toy rules.
pub trait QueryPartitionRule {
    /// `Some(param index)` if the query routes on one parameter; `None` if
    /// it broadcasts to every partition.
    fn partition_param(&self, query: QueryId) -> Option<usize>;
    /// Home partition of a concrete routing value.
    fn partition_of(&self, v: &Value) -> PartitionId;
    /// Cluster size.
    fn num_partitions(&self) -> u32;
}

/// Estimation knobs.
#[derive(Debug, Clone)]
pub struct EstimateConfig {
    /// Hard cap on path length; §4.6 puts the practical limit near 175–200
    /// queries per transaction.
    pub max_states: usize,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        EstimateConfig { max_states: 500 }
    }
}

/// The initial path estimate and everything the optimization selection
/// (§4.3) derives from it.
#[derive(Debug, Clone)]
pub struct PathEstimate {
    /// Model vertices visited. When the exact `(query, counter, partitions,
    /// previous)` state is missing from the model, the shape-matching proxy
    /// vertex is recorded instead (its probability table still describes
    /// the control flow from that point).
    pub vertices: Vec<VertexId>,
    /// Product of `P(chosen | feasible)` along the path — the confidence
    /// coefficient.
    pub confidence: f64,
    /// Partitions the transaction is predicted to touch.
    pub touched: PartitionSet,
    /// Per-partition confidence at first touch (OP2's lock-set confidence).
    pub partition_confidence: FxHashMap<PartitionId, f64>,
    /// Number of accesses per partition along the path (OP1's base-partition
    /// vote).
    pub access_counts: FxHashMap<PartitionId, u32>,
    /// Greatest abort probability across the visited states' tables (OP3).
    pub abort_prob: f64,
    /// True if the path reached the commit vertex.
    pub reached_commit: bool,
    /// True if the path reached the abort vertex.
    pub reached_abort: bool,
    /// Transitions chosen by edge weight alone because no candidate could
    /// be validated through the mapping.
    pub uncertain_steps: u32,
    /// Partitions of feasible-but-not-taken candidate states: alternative
    /// branches the transaction could still take (the §4.6 ambiguity). Undo
    /// logging must stay on while these can leave the predicted lock set.
    pub alt_partitions: PartitionSet,
    /// Candidate transitions examined — the work measure used to charge
    /// simulated estimation time.
    pub states_examined: u32,
    /// Query id of each estimated step, aligned with `vertices[1..]`
    /// (terminal steps excluded).
    pub step_queries: Vec<QueryId>,
    /// Predicted partitions of each estimated step, aligned with
    /// `step_queries`.
    pub step_partitions: Vec<PartitionSet>,
}

impl PathEstimate {
    /// The partition accessed most along the path (OP1's base choice),
    /// lowest id on ties.
    pub fn best_base(&self) -> Option<PartitionId> {
        self.access_counts.iter().max_by_key(|(p, c)| (**c, u32::MAX - **p)).map(|(p, _)| *p)
    }
}

/// A merged candidate transition.
struct Candidate {
    kind: QueryKind,
    /// Predicted partitions (mapping-derived when resolved, the model's
    /// historical partitions otherwise; empty for terminals).
    partitions: PartitionSet,
    /// Summed probability over the merged successor vertices.
    prob: f64,
    /// Representative vertex (exact-match preferred, else first edge).
    proxy: VertexId,
    /// Whether an exact vertex match exists for the predicted partitions.
    exact: Option<VertexId>,
    valid: bool,
}

fn merge_candidate(cands: &mut Vec<Candidate>, new: Candidate) {
    if let Some(c) = cands
        .iter_mut()
        .find(|c| c.kind == new.kind && c.partitions == new.partitions && c.valid == new.valid)
    {
        c.prob += new.prob;
        if c.exact.is_none() {
            if let Some(id) = new.exact {
                c.exact = Some(id);
                c.proxy = id;
            }
        }
        return;
    }
    cands.push(new);
}

/// Maps NaN below every real number for `f64::total_cmp`-based max
/// selection, so degenerate probabilities lose rather than crash or win.
/// (`total_cmp` alone would rank positive NaN above +∞.)
pub(crate) fn nan_as_lowest(p: f64) -> f64 {
    if p.is_nan() {
        f64::NEG_INFINITY
    } else {
        p
    }
}

/// Tie-break rank: queries > commit > abort.
fn rank(kind: QueryKind) -> u8 {
    match kind {
        QueryKind::Query(_) => 2,
        QueryKind::Commit => 1,
        QueryKind::Begin | QueryKind::Abort => 0,
    }
}

/// Walks the model to produce the initial path estimate for `args`.
pub fn estimate_path(
    model: &MarkovModel,
    rule: &dyn QueryPartitionRule,
    mapping: &ProcMapping,
    args: &[Value],
    cfg: &EstimateConfig,
) -> PathEstimate {
    let mut est = PathEstimate {
        vertices: vec![model.begin()],
        confidence: 1.0,
        touched: PartitionSet::EMPTY,
        partition_confidence: FxHashMap::default(),
        access_counts: FxHashMap::default(),
        abort_prob: model.vertex(model.begin()).table.abort,
        reached_commit: false,
        reached_abort: false,
        uncertain_steps: 0,
        alt_partitions: PartitionSet::EMPTY,
        states_examined: 0,
        step_queries: Vec::new(),
        step_partitions: Vec::new(),
    };
    let mut counters: FxHashMap<QueryId, u16> = FxHashMap::default();
    let mut prev = PartitionSet::EMPTY;
    let mut cur = model.begin();

    for _ in 0..cfg.max_states {
        let v = model.vertex(cur);
        // Successor edges come from the current vertex plus, when the
        // current vertex is not itself the best-observed state of its
        // shape, from that shape proxy: control flow is shape-determined,
        // and an exact vertex trained from a handful of records can miss
        // skeleton edges (e.g. "InsertOrder follows the 6th CheckStock")
        // that other partition-variants of the same position have.
        let proxy_edges: &[crate::model::Edge] = model
            .shape_proxy_any(v.key.kind, v.key.counter)
            .filter(|&pid| pid != cur)
            .map(|pid| model.vertex(pid).edges.as_slice())
            .unwrap_or(&[]);
        // Build merged candidates from the successor edges.
        let mut cands: Vec<Candidate> = Vec::new();
        for e in v.edges.iter().chain(proxy_edges.iter()) {
            // Skip untrained edges: live placeholders (§4.4) carry no
            // probabilities or tables until maintenance folds them in.
            if e.prob == 0.0 {
                continue;
            }
            est.states_examined += 1;
            let child = model.vertex(e.to);
            match child.key.kind {
                QueryKind::Begin => {}
                QueryKind::Commit | QueryKind::Abort => {
                    merge_candidate(
                        &mut cands,
                        Candidate {
                            kind: child.key.kind,
                            partitions: PartitionSet::EMPTY,
                            prob: e.prob,
                            proxy: e.to,
                            exact: Some(e.to),
                            valid: true,
                        },
                    );
                }
                QueryKind::Query(q) => {
                    let expected = counters.get(&q).copied().unwrap_or(0);
                    if child.key.counter != expected {
                        continue;
                    }
                    match rule.partition_param(q) {
                        None => {
                            // Broadcast: partitions known without mapping.
                            let all = PartitionSet::all(rule.num_partitions());
                            let exact = (child.key.partitions == all && child.key.previous == prev)
                                .then_some(e.to);
                            merge_candidate(
                                &mut cands,
                                Candidate {
                                    kind: child.key.kind,
                                    partitions: all,
                                    prob: e.prob,
                                    proxy: e.to,
                                    exact,
                                    valid: true,
                                },
                            );
                        }
                        Some(pi) => {
                            match mapping.resolve_detail(q, u32::from(expected), pi, args) {
                                Resolve::Value(val) => {
                                    let predicted = PartitionSet::single(rule.partition_of(&val));
                                    let exact = (child.key.partitions == predicted
                                        && child.key.previous == prev)
                                        .then_some(e.to);
                                    merge_candidate(
                                        &mut cands,
                                        Candidate {
                                            kind: child.key.kind,
                                            partitions: predicted,
                                            prob: e.prob,
                                            proxy: e.to,
                                            exact,
                                            valid: true,
                                        },
                                    );
                                }
                                Resolve::OutOfRange => {}
                                Resolve::Unmapped => {
                                    // Historical partitions; each variant is its
                                    // own uncertain candidate, and path
                                    // consistency still applies.
                                    if child.key.previous == prev {
                                        merge_candidate(
                                            &mut cands,
                                            Candidate {
                                                kind: child.key.kind,
                                                partitions: child.key.partitions,
                                                prob: e.prob,
                                                proxy: e.to,
                                                exact: Some(e.to),
                                                valid: false,
                                            },
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // Valid candidates preempt uncertain ones; within the class, pick
        // the heaviest, breaking ties towards continuing, then commit.
        let any_valid = cands.iter().any(|c| c.valid);
        let denom: f64 = cands.iter().filter(|c| c.valid == any_valid).map(|c| c.prob).sum();
        let chosen = cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.valid == any_valid)
            .max_by(|(_, a), (_, b)| {
                // total_cmp so a degenerate (NaN) probability table cannot
                // abort the estimate; NaN sorts below every real weight.
                nan_as_lowest(a.prob)
                    .total_cmp(&nan_as_lowest(b.prob))
                    .then_with(|| rank(a.kind).cmp(&rank(b.kind)))
            })
            .map(|(i, _)| i);
        let Some(chosen_idx) = chosen else {
            break; // dead end: incomplete estimate
        };
        let chosen = &cands[chosen_idx];
        if !chosen.valid {
            est.uncertain_steps += 1;
        }
        est.confidence *= if denom > 0.0 { chosen.prob / denom } else { 0.0 };
        // Alternative feasible branches that were not taken.
        let chosen_parts = chosen.partitions;
        let chosen_kind = chosen.kind;
        for c in cands.iter().filter(|c| c.valid == any_valid) {
            if c.kind != chosen_kind || c.partitions != chosen_parts {
                est.alt_partitions = est.alt_partitions.union(c.partitions);
            }
        }
        est.alt_partitions = est.alt_partitions.difference(chosen_parts);

        let next = chosen.exact.unwrap_or(chosen.proxy);
        est.vertices.push(next);
        est.abort_prob = est.abort_prob.max(model.vertex(next).table.abort);
        match chosen_kind {
            QueryKind::Commit => {
                est.reached_commit = true;
                break;
            }
            QueryKind::Abort => {
                est.reached_abort = true;
                break;
            }
            QueryKind::Query(q) => {
                *counters.entry(q).or_insert(0) += 1;
                est.step_queries.push(q);
                est.step_partitions.push(chosen_parts);
                for p in chosen_parts.iter() {
                    *est.access_counts.entry(p).or_insert(0) += 1;
                    est.partition_confidence.entry(p).or_insert(est.confidence);
                }
                est.touched = est.touched.union(chosen_parts);
                prev = prev.union(chosen_parts);
            }
            QueryKind::Begin => unreachable!("begin has no incoming edges"),
        }
        cur = next;
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_model;
    use common::ProcId;
    use mapping::{build_mapping, MappingConfig};
    use trace::{PartitionResolver, QueryRecord, TraceRecord};

    /// Toy NewOrder: q0 = GetW(w), q1 = Check(i, w_i) repeated, q2 = Ins(w).
    struct ToyRule {
        parts: u32,
    }

    impl QueryPartitionRule for ToyRule {
        fn partition_param(&self, query: QueryId) -> Option<usize> {
            match query {
                0 => Some(0),
                1 => Some(1),
                2 => Some(0),
                _ => None,
            }
        }
        fn partition_of(&self, v: &Value) -> PartitionId {
            (v.expect_int().unsigned_abs() % u64::from(self.parts)) as PartitionId
        }
        fn num_partitions(&self) -> u32 {
            self.parts
        }
    }

    struct ToyResolver {
        parts: u32,
    }

    impl PartitionResolver for ToyResolver {
        fn partitions(&self, _p: ProcId, q: QueryId, params: &[Value]) -> PartitionSet {
            let rule = ToyRule { parts: self.parts };
            match rule.partition_param(q) {
                Some(pi) => PartitionSet::single(rule.partition_of(&params[pi])),
                None => PartitionSet::all(self.parts),
            }
        }
        fn is_write(&self, _p: ProcId, q: QueryId) -> bool {
            q == 2
        }
        fn query_name(&self, _p: ProcId, q: QueryId) -> String {
            ["GetW", "Check", "Ins"][q as usize].into()
        }
        fn num_partitions(&self) -> u32 {
            self.parts
        }
    }

    fn record(w: i64, item_ws: &[i64], aborted: bool) -> TraceRecord {
        let mut queries = vec![QueryRecord { query: 0, params: vec![Value::Int(w)] }];
        for (k, &iw) in item_ws.iter().enumerate() {
            queries.push(QueryRecord {
                query: 1,
                params: vec![Value::Int(1000 + k as i64), Value::Int(iw)],
            });
        }
        if !aborted {
            queries.push(QueryRecord { query: 2, params: vec![Value::Int(w)] });
        }
        TraceRecord {
            proc: 0,
            params: vec![
                Value::Int(w),
                Value::Array((0..item_ws.len()).map(|k| Value::Int(1000 + k as i64)).collect()),
                Value::Array(item_ws.iter().map(|&x| Value::Int(x)).collect()),
            ],
            queries,
            aborted,
        }
    }

    fn fixture(parts: u32) -> (MarkovModel, ProcMapping) {
        // Mostly local single-item and two-item orders, some remote.
        let mut records = Vec::new();
        for t in 0..120i64 {
            let w = t % i64::from(parts);
            // t % 5 cycles against t % parts so every warehouse sees every
            // behaviour: 20% remote orders, 20% aborts, 60% local.
            match t % 5 {
                0 => records.push(record(w, &[w, (w + 1) % i64::from(parts)], false)),
                1 => records.push(record(w, &[w], true)),
                _ => records.push(record(w, &[w, w], false)),
            }
        }
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let model = build_model(0, &refs, &ToyResolver { parts });
        let mapping = build_mapping(&refs, &MappingConfig::default());
        (model, mapping)
    }

    fn args(w: i64, item_ws: &[i64]) -> Vec<Value> {
        vec![
            Value::Int(w),
            Value::Array((0..item_ws.len()).map(|k| Value::Int(1000 + k as i64)).collect()),
            Value::Array(item_ws.iter().map(|&x| Value::Int(x)).collect()),
        ]
    }

    #[test]
    fn local_order_estimated_single_partition() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(2, &[2, 2]), &EstimateConfig::default());
        assert!(est.reached_commit);
        assert_eq!(est.touched, PartitionSet::single(2));
        assert_eq!(est.best_base(), Some(2));
        assert!(est.confidence > 0.3, "confidence {}", est.confidence);
        assert_eq!(est.uncertain_steps, 0);
    }

    #[test]
    fn remote_item_estimated_distributed() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(1, &[1, 2]), &EstimateConfig::default());
        assert!(est.reached_commit);
        assert_eq!(est.touched, PartitionSet::from_iter([1u32, 2]));
        assert_eq!(est.best_base(), Some(1), "w=1 accessed most");
    }

    #[test]
    fn generalizes_to_unseen_partition_combination() {
        // Training only contains remote items at (w+1) % parts; a request
        // with a remote item two partitions away has no exact vertex, but
        // the mapping pins the partitions, so the estimate must still be
        // complete and correct (the §4.6 state-space-explosion case).
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(1, &[1, 3]), &EstimateConfig::default());
        assert!(est.reached_commit, "walk must not dead-end");
        assert_eq!(est.touched, PartitionSet::from_iter([1u32, 3]));
        assert_eq!(est.uncertain_steps, 0);
    }

    #[test]
    fn array_length_bounds_loop() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(3, &[3]), &EstimateConfig::default());
        assert!(est.reached_commit || est.reached_abort);
        let names: Vec<&str> =
            est.vertices.iter().map(|&v| model.vertex(v).name.as_str()).collect();
        let checks = names.iter().filter(|n| **n == "Check").count();
        assert_eq!(checks, 1, "path {names:?}");
    }

    #[test]
    fn abort_probability_from_tables() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(0, &[0, 0]), &EstimateConfig::default());
        // ~20% of training records aborted (after the first Check).
        assert!(est.abort_prob > 0.05 && est.abort_prob < 0.5, "{}", est.abort_prob);
    }

    #[test]
    fn partition_confidence_monotone() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(1, &[1, 2]), &EstimateConfig::default());
        let c1 = est.partition_confidence[&1];
        let c2 = est.partition_confidence[&2];
        assert!(c1 >= c2, "earlier-touched partition has higher confidence");
        assert!(est.confidence <= c2);
    }

    #[test]
    fn max_states_caps_walk() {
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est = estimate_path(
            &model,
            &rule,
            &mapping,
            &args(1, &[1, 1]),
            &EstimateConfig { max_states: 1 },
        );
        assert!(!est.reached_commit);
        assert_eq!(est.vertices.len(), 2); // begin + one state
    }

    #[test]
    fn merged_candidates_sum_probabilities() {
        // From Check(c0), the training distribution splits between local
        // and remote second items plus aborts. With the mapping resolving
        // the second item to one partition, the Check variants merge: the
        // chosen Check candidate's renormalized probability must exceed
        // any single variant's raw edge probability.
        let (model, mapping) = fixture(4);
        let rule = ToyRule { parts: 4 };
        let est =
            estimate_path(&model, &rule, &mapping, &args(0, &[0, 1]), &EstimateConfig::default());
        assert!(est.reached_commit);
        // Confidence = P(Check | feasible) at the branch point; Check takes
        // 0.8 of the mass (0.2 abort), so the confidence stays well above
        // the raw remote-variant edge probability (0.2).
        assert!(est.confidence > 0.5, "confidence {}", est.confidence);
    }

    #[test]
    fn nan_edge_probabilities_do_not_abort_estimation() {
        // Regression: the candidate-selection comparator panicked on NaN.
        let (mut model, mapping) = fixture(4);
        let n = model.len() as VertexId;
        for id in 0..n {
            for e in &mut model.vertex_mut(id).edges {
                e.prob = f64::NAN;
            }
        }
        let rule = ToyRule { parts: 4 };
        // Must terminate without panicking; the walk still traverses the
        // graph (candidates all tie at the NaN floor) or dead-ends.
        let est =
            estimate_path(&model, &rule, &mapping, &args(1, &[1]), &EstimateConfig::default());
        assert!(est.states_examined > 0);
    }
}
