//! The model graph: vertices, edges, lookups.

use crate::ptable::ProbTable;
use common::{FxHashMap, PartitionSet, ProcId, QueryId};
use serde::{Deserialize, Serialize};

/// Identifies what a vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// The transaction has not executed anything yet.
    Begin,
    /// Terminal: committed.
    Commit,
    /// Terminal: aborted.
    Abort,
    /// An invocation of the procedure's query with this id.
    Query(QueryId),
}

/// A vertex key — the paper's four-part execution-state identity (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VertexKey {
    /// The query (or begin/commit/abort).
    pub kind: QueryKind,
    /// How many times this query executed previously in the transaction.
    pub counter: u16,
    /// Partitions this invocation accesses.
    pub partitions: PartitionSet,
    /// Partitions the transaction accessed before this state.
    pub previous: PartitionSet,
}

impl VertexKey {
    /// Key for a special state.
    pub fn special(kind: QueryKind) -> Self {
        VertexKey {
            kind,
            counter: 0,
            partitions: PartitionSet::EMPTY,
            previous: PartitionSet::EMPTY,
        }
    }

    /// All partitions seen once this state is reached.
    pub fn seen(&self) -> PartitionSet {
        self.partitions.union(self.previous)
    }
}

/// Vertex id within one model.
pub type VertexId = u32;

/// An outgoing edge with its trace count and derived probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    /// Destination vertex.
    pub to: VertexId,
    /// Times the transition was taken in the training trace (plus any
    /// maintenance recomputations folded in).
    pub count: u64,
    /// Transition probability from the parent.
    pub prob: f64,
    /// On-line visit counter since the last probability recomputation
    /// (model maintenance, §4.5).
    pub live: u64,
}

/// One execution state plus its outgoing distribution and probability table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    /// Identity.
    pub key: VertexKey,
    /// Display name of the query ("GetWarehouse", or "begin"/"commit"/"abort").
    pub name: String,
    /// True if the vertex's query writes data.
    pub is_write: bool,
    /// Outgoing edges.
    pub edges: Vec<Edge>,
    /// Times this vertex was reached in the training trace.
    pub hits: u64,
    /// Pre-computed event probabilities (Fig. 5).
    pub table: ProbTable,
}

impl Vertex {
    fn new(key: VertexKey, name: String, is_write: bool, num_partitions: u32) -> Self {
        Vertex {
            key,
            name,
            is_write,
            edges: Vec::new(),
            hits: 0,
            table: ProbTable::zeroed(num_partitions),
        }
    }

    /// The edge to `to`, if present.
    pub fn edge_to(&self, to: VertexId) -> Option<&Edge> {
        self.edges.iter().find(|e| e.to == to)
    }

    /// The highest-probability outgoing edge. A degenerate probability
    /// (NaN, e.g. from a zeroed-out recomputation) sorts below every real
    /// one instead of aborting the run.
    pub fn argmax_edge(&self) -> Option<&Edge> {
        self.edges.iter().max_by(|a, b| {
            crate::estimate::nan_as_lowest(a.prob)
                .total_cmp(&crate::estimate::nan_as_lowest(b.prob))
        })
    }
}

/// A stored procedure's transaction Markov model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovModel {
    /// The procedure modeled.
    pub proc: ProcId,
    /// Cluster size the model was resolved against. Models must be
    /// regenerated when the partitioning scheme changes (§3.1).
    pub num_partitions: u32,
    vertices: Vec<Vertex>,
    #[serde(skip)]
    index: FxHashMap<VertexKey, VertexId>,
    begin: VertexId,
    commit: VertexId,
    abort: VertexId,
}

impl MarkovModel {
    /// Creates an empty model containing only the three special vertices.
    pub fn new(proc: ProcId, num_partitions: u32) -> Self {
        let mut m = MarkovModel {
            proc,
            num_partitions,
            vertices: Vec::new(),
            index: FxHashMap::default(),
            begin: 0,
            commit: 0,
            abort: 0,
        };
        m.begin = m.intern(VertexKey::special(QueryKind::Begin), "begin".into(), false);
        m.commit = m.intern(VertexKey::special(QueryKind::Commit), "commit".into(), false);
        m.abort = m.intern(VertexKey::special(QueryKind::Abort), "abort".into(), false);
        m
    }

    /// The begin vertex.
    pub fn begin(&self) -> VertexId {
        self.begin
    }

    /// The commit vertex.
    pub fn commit(&self) -> VertexId {
        self.commit
    }

    /// The abort vertex.
    pub fn abort(&self) -> VertexId {
        self.abort
    }

    /// Number of vertices (including the three special states).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Never true — a model always holds its special states.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Immutable vertex access.
    pub fn vertex(&self, id: VertexId) -> &Vertex {
        &self.vertices[id as usize]
    }

    /// Mutable vertex access (builder/maintenance use).
    pub fn vertex_mut(&mut self, id: VertexId) -> &mut Vertex {
        &mut self.vertices[id as usize]
    }

    /// All vertices, indexable by [`VertexId`].
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// Finds an existing vertex by key.
    pub fn find(&self, key: &VertexKey) -> Option<VertexId> {
        self.index.get(key).copied()
    }

    /// Finds or creates the vertex for `key`. New vertices start as
    /// probability-less placeholders (§4.4).
    pub fn intern(&mut self, key: VertexKey, name: String, is_write: bool) -> VertexId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = self.vertices.len() as VertexId;
        self.vertices.push(Vertex::new(key, name, is_write, self.num_partitions));
        self.index.insert(key, id);
        id
    }

    /// Adds `n` observations of the transition `from -> to`.
    pub fn add_transition(&mut self, from: VertexId, to: VertexId, n: u64) {
        let v = &mut self.vertices[from as usize];
        v.hits += n;
        if let Some(e) = v.edges.iter_mut().find(|e| e.to == to) {
            e.count += n;
        } else {
            v.edges.push(Edge { to, count: n, prob: 0.0, live: 0 });
        }
    }

    /// Records an on-line visit of `from -> to` (maintenance counters),
    /// creating the edge as a placeholder if it never appeared in training.
    pub fn observe_transition(&mut self, from: VertexId, to: VertexId) {
        let v = &mut self.vertices[from as usize];
        if let Some(e) = v.edges.iter_mut().find(|e| e.to == to) {
            e.live += 1;
        } else {
            v.edges.push(Edge { to, count: 0, prob: 0.0, live: 1 });
        }
    }

    /// Recomputes every edge probability from `count` (training) plus
    /// `live` (on-line) observations, folding the live counts in and
    /// clearing them. Called at build time and by model maintenance (§4.5).
    pub fn recompute_probabilities(&mut self) {
        for v in &mut self.vertices {
            let mut total = 0u64;
            for e in &mut v.edges {
                e.count += e.live;
                e.live = 0;
                total += e.count;
            }
            v.hits = v.hits.max(total);
            for e in &mut v.edges {
                e.prob = if total == 0 { 0.0 } else { e.count as f64 / total as f64 };
            }
        }
    }

    /// Rebuilds the key index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index =
            self.vertices.iter().enumerate().map(|(i, v)| (v.key, i as VertexId)).collect();
    }

    /// The most-observed trained vertex with the given query, counter, and
    /// *seen-partition set* — a structurally analogous proxy whose
    /// probability table approximates an untrained placeholder state at the
    /// same control-flow position (used for OP4 finish decisions when a
    /// transaction wanders into a state the trace never produced — most
    /// usefully after a broadcast query, where `seen` is every partition
    /// and only the vertex's own-partition slot differs). Requiring the
    /// identical seen set keeps the analogy honest: a proxy that has seen
    /// different partitions would wrongly declare the others finished.
    pub fn shape_proxy(
        &self,
        kind: QueryKind,
        counter: u16,
        seen: PartitionSet,
    ) -> Option<VertexId> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| {
                v.key.kind == kind && v.key.counter == counter && v.key.seen() == seen && v.hits > 0
            })
            .max_by_key(|(_, v)| v.hits)
            .map(|(i, _)| i as VertexId)
    }

    /// The most-observed trained vertex with the given query and counter,
    /// regardless of partitions — used by path estimation to enumerate
    /// successor *shapes* when the exact vertex's own edges are incomplete
    /// (a consequence of the §4.6 state-space explosion on finite traces).
    pub fn shape_proxy_any(&self, kind: QueryKind, counter: u16) -> Option<VertexId> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| v.key.kind == kind && v.key.counter == counter && v.hits > 0)
            .max_by_key(|(_, v)| v.hits)
            .map(|(i, _)| i as VertexId)
    }

    /// Vertices in a best-effort topological order (parents before
    /// children).
    ///
    /// The paper calls the model an acyclic graph (§3.1), and for
    /// procedures whose control code issues queries in a fixed order that
    /// holds. But a trace in which two invocations interleave the *same*
    /// queries differently (A-B-A in one transaction, A-A-B in another)
    /// produces a genuine cycle between the shared states. This routine
    /// therefore runs Kahn's algorithm and appends any cycle members in
    /// index order at the end, so downstream passes (probability-table
    /// computation) still visit every vertex; table values inside a cycle
    /// become one-pass approximations.
    pub fn topological_order(&self) -> Vec<VertexId> {
        let n = self.vertices.len();
        let mut indegree = vec![0u32; n];
        for v in &self.vertices {
            for e in &v.edges {
                indegree[e.to as usize] += 1;
            }
        }
        let mut stack: Vec<VertexId> =
            (0..n as VertexId).filter(|&i| indegree[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut emitted = vec![false; n];
        while let Some(id) = stack.pop() {
            order.push(id);
            emitted[id as usize] = true;
            for e in &self.vertices[id as usize].edges {
                let d = &mut indegree[e.to as usize];
                *d -= 1;
                if *d == 0 {
                    stack.push(e.to);
                }
            }
        }
        if order.len() < n {
            for (i, done) in emitted.iter().enumerate() {
                if !done {
                    order.push(i as VertexId);
                }
            }
        }
        order
    }

    /// True if the model contains a cycle (see [`Self::topological_order`]).
    pub fn has_cycle(&self) -> bool {
        let n = self.vertices.len();
        let mut indegree = vec![0u32; n];
        for v in &self.vertices {
            for e in &v.edges {
                indegree[e.to as usize] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0;
        while let Some(id) = stack.pop() {
            seen += 1;
            for e in &self.vertices[id].edges {
                let d = &mut indegree[e.to as usize];
                *d -= 1;
                if *d == 0 {
                    stack.push(e.to as usize);
                }
            }
        }
        seen < n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_states_exist() {
        let m = MarkovModel::new(0, 4);
        assert_eq!(m.len(), 3);
        assert_ne!(m.begin(), m.commit());
        assert_ne!(m.commit(), m.abort());
        assert_eq!(m.vertex(m.begin()).name, "begin");
    }

    #[test]
    fn intern_deduplicates() {
        let mut m = MarkovModel::new(0, 4);
        let key = VertexKey {
            kind: QueryKind::Query(0),
            counter: 0,
            partitions: PartitionSet::single(1),
            previous: PartitionSet::EMPTY,
        };
        let a = m.intern(key, "Q".into(), false);
        let b = m.intern(key, "Q".into(), false);
        assert_eq!(a, b);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn transitions_accumulate_and_normalize() {
        let mut m = MarkovModel::new(0, 4);
        let key = VertexKey {
            kind: QueryKind::Query(0),
            counter: 0,
            partitions: PartitionSet::single(0),
            previous: PartitionSet::EMPTY,
        };
        let q = m.intern(key, "Q".into(), false);
        let (b, c, a) = (m.begin(), m.commit(), m.abort());
        m.add_transition(b, q, 3);
        m.add_transition(q, c, 2);
        m.add_transition(q, a, 1);
        m.recompute_probabilities();
        let v = m.vertex(q);
        assert!((v.edge_to(c).unwrap().prob - 2.0 / 3.0).abs() < 1e-12);
        assert!((v.edge_to(a).unwrap().prob - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(v.argmax_edge().unwrap().to, c);
    }

    #[test]
    fn live_counts_fold_in() {
        let mut m = MarkovModel::new(0, 2);
        let key = VertexKey {
            kind: QueryKind::Query(0),
            counter: 0,
            partitions: PartitionSet::single(0),
            previous: PartitionSet::EMPTY,
        };
        let q = m.intern(key, "Q".into(), false);
        let c = m.commit();
        m.add_transition(q, c, 1);
        m.recompute_probabilities();
        m.observe_transition(q, m.abort());
        m.observe_transition(q, m.abort());
        m.recompute_probabilities();
        let v = m.vertex(q);
        assert!((v.edge_to(m.abort()).unwrap().prob - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_edge_survives_nan_probabilities() {
        // Regression: the comparator used `partial_cmp(..).expect(..)` and
        // aborted the whole run on a degenerate probability table.
        let mut m = MarkovModel::new(0, 2);
        let mk = |q: u32| VertexKey {
            kind: QueryKind::Query(q),
            counter: 0,
            partitions: PartitionSet::single(0),
            previous: PartitionSet::EMPTY,
        };
        let a = m.intern(mk(0), "A".into(), false);
        let b = m.intern(mk(1), "B".into(), false);
        m.add_transition(m.begin(), a, 3);
        m.add_transition(m.begin(), b, 1);
        m.recompute_probabilities();
        // Poison one edge.
        m.vertex_mut(m.begin()).edges[1].prob = f64::NAN;
        let best = m.vertex(m.begin()).argmax_edge().expect("edges exist");
        assert_eq!(best.to, a, "NaN must lose, not win or panic");
        // All-NaN still answers something instead of panicking.
        m.vertex_mut(m.begin()).edges[0].prob = f64::NAN;
        assert!(m.vertex(m.begin()).argmax_edge().is_some());
    }

    #[test]
    fn topological_order_is_valid() {
        let mut m = MarkovModel::new(0, 2);
        let mk = |q: u32, prev: PartitionSet| VertexKey {
            kind: QueryKind::Query(q),
            counter: 0,
            partitions: PartitionSet::single(0),
            previous: prev,
        };
        let a = m.intern(mk(0, PartitionSet::EMPTY), "A".into(), false);
        let b = m.intern(mk(1, PartitionSet::single(0)), "B".into(), false);
        m.add_transition(m.begin(), a, 1);
        m.add_transition(a, b, 1);
        m.add_transition(b, m.commit(), 1);
        let order = m.topological_order();
        let pos = |id: VertexId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(m.begin()) < pos(a));
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(m.commit()));
    }
}
