//! Model (de)serialization.
//!
//! In the paper's deployment (Fig. 6), Markov models are generated off-line
//! from a workload trace and shipped to every node in the cluster. This
//! module provides the JSON wire format for that hand-off. Models embed the
//! cluster size they were resolved against; loading a model for a different
//! configuration is rejected, because vertex partition sets are only
//! meaningful for the partition count they were built with (§3.1).

use crate::model::MarkovModel;
use common::{Error, Result};
use std::io::{BufRead, Write};

/// Serializes a model as pretty JSON into `w`.
pub fn save_model<W: Write>(model: &MarkovModel, mut w: W) -> Result<()> {
    let json = serde_json::to_string(model).map_err(|e| Error::Serde(e.to_string()))?;
    w.write_all(json.as_bytes()).map_err(|e| Error::Serde(e.to_string()))
}

/// Deserializes a model from `r`, rebuilding the vertex index, and checks it
/// was built for `expected_partitions`.
pub fn load_model<R: BufRead>(mut r: R, expected_partitions: u32) -> Result<MarkovModel> {
    let mut buf = String::new();
    r.read_to_string(&mut buf).map_err(|e| Error::Serde(e.to_string()))?;
    let mut model: MarkovModel =
        serde_json::from_str(&buf).map_err(|e| Error::Serde(e.to_string()))?;
    if model.num_partitions != expected_partitions {
        return Err(Error::Other(format!(
            "model was built for {} partitions, cluster has {expected_partitions}; \
             regenerate the model from the trace (§3.1)",
            model.num_partitions
        )));
    }
    model.rebuild_index();
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{QueryKind, VertexKey};
    use crate::ptable::compute_tables;
    use common::PartitionSet;

    fn sample_model() -> MarkovModel {
        let mut m = MarkovModel::new(3, 4);
        let q = m.intern(
            VertexKey {
                kind: QueryKind::Query(0),
                counter: 0,
                partitions: PartitionSet::single(2),
                previous: PartitionSet::EMPTY,
            },
            "GetThing".into(),
            false,
        );
        m.add_transition(m.begin(), q, 5);
        m.add_transition(q, m.commit(), 4);
        m.add_transition(q, m.abort(), 1);
        m.recompute_probabilities();
        compute_tables(&mut m);
        m
    }

    #[test]
    fn round_trip_preserves_everything() {
        let m = sample_model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let back = load_model(&buf[..], 4).unwrap();
        assert_eq!(back.len(), m.len());
        assert_eq!(back.proc, m.proc);
        // Probabilities and tables survive.
        for (a, b) in m.vertices().iter().zip(back.vertices()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.name, b.name);
            assert_eq!(a.edges.len(), b.edges.len());
            assert!((a.table.abort - b.table.abort).abs() < 1e-12);
        }
        // The rebuilt index still finds vertices by key.
        let key = m.vertex(3).key;
        assert_eq!(back.find(&key), Some(3));
    }

    #[test]
    fn wrong_partition_count_rejected() {
        let m = sample_model();
        let mut buf = Vec::new();
        save_model(&m, &mut buf).unwrap();
        let err = load_model(&buf[..], 8).unwrap_err();
        assert!(err.to_string().contains("regenerate"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(load_model(&b"not json"[..], 4).is_err());
    }
}
