//! Transaction Markov models (paper §3–§4).
//!
//! A stored procedure's Markov model is an acyclic directed graph of
//! *execution states*. Each vertex is a unique invocation of one query,
//! identified by (1) the query, (2) how many times it has executed before in
//! the transaction (*counter*), (3) the partitions the invocation accesses,
//! and (4) the partitions the transaction accessed previously. Three special
//! vertices represent the `begin`, `commit`, and `abort` states. Edge
//! probabilities come from a sample workload trace; every vertex also
//! carries a pre-computed *probability table* (Fig. 5) used to make and
//! refine predictions without re-traversing the graph.

pub mod builder;
pub mod dot;
pub mod estimate;
pub mod io;
pub mod maintenance;
pub mod model;
pub mod ptable;

pub use builder::build_model;
pub use dot::to_dot;
pub use estimate::{estimate_path, EstimateConfig, PathEstimate, QueryPartitionRule};
pub use io::{load_model, save_model};
pub use maintenance::{ModelMonitor, PathTracker, PendingState};
pub use model::{Edge, MarkovModel, QueryKind, Vertex, VertexId, VertexKey};
pub use ptable::ProbTable;
