//! Per-vertex probability tables (paper §3.1 Fig. 5, §3.2).
//!
//! Each vertex is annotated with a table of event probabilities used to make
//! initial predictions and to refine them as the transaction executes. The
//! tables are pre-computed bottom-up (children before parents, in ascending
//! longest-path-to-terminal order) so that on-line estimation never has to
//! traverse the graph — the paper measures this optional step as saving an
//! average of 24% of on-line computation time (the `ablation_ptables` bench
//! reproduces that comparison).

use crate::model::{MarkovModel, QueryKind, VertexId};
use serde::{Deserialize, Serialize};

/// Per-partition event probabilities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PartitionProbs {
    /// P(some future query reads data at this partition).
    pub read: f64,
    /// P(some future query writes data at this partition).
    pub write: f64,
    /// P(the transaction is finished with this partition).
    pub finish: f64,
}

/// A vertex's probability table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbTable {
    /// P(all remaining queries execute on the transaction's single partition
    /// — i.e. the transaction stays single-partitioned) (OP1).
    pub single_partition: f64,
    /// P(the transaction eventually aborts) (OP3).
    pub abort: f64,
    /// Per-partition read/write/finish probabilities (OP2, OP4).
    pub partitions: Vec<PartitionProbs>,
}

impl ProbTable {
    /// An all-zero table for `n` partitions.
    pub fn zeroed(n: u32) -> Self {
        ProbTable {
            single_partition: 0.0,
            abort: 0.0,
            partitions: vec![PartitionProbs::default(); n as usize],
        }
    }

    /// The finish probability for partition `p`.
    pub fn finish(&self, p: u32) -> f64 {
        self.partitions[p as usize].finish
    }

    /// P(partition `p` is read or written in the future).
    pub fn access(&self, p: u32) -> f64 {
        let pp = &self.partitions[p as usize];
        pp.read.max(pp.write)
    }
}

/// Computes every vertex's probability table (the §3.2 processing phase).
///
/// Terminal defaults: the commit vertex has `finish = 1` for every partition
/// and `abort = 0`; the abort vertex additionally has `abort = 1`. Interior
/// vertices combine their children's tables weighted by edge probability,
/// then override the entries for the partitions their own query touches
/// (accessed ⇒ read/write probability one, finish probability zero).
pub fn compute_tables(model: &mut MarkovModel) {
    let order = model.topological_order();
    // Children before parents.
    for &id in order.iter().rev() {
        let table = table_for(model, id);
        model.vertex_mut(id).table = table;
    }
}

fn table_for(model: &MarkovModel, id: VertexId) -> ProbTable {
    let n = model.num_partitions;
    let v = model.vertex(id);
    match v.key.kind {
        QueryKind::Commit => {
            let mut t = ProbTable::zeroed(n);
            t.single_partition = 1.0;
            for p in &mut t.partitions {
                p.finish = 1.0;
            }
            t
        }
        QueryKind::Abort => {
            let mut t = ProbTable::zeroed(n);
            t.abort = 1.0;
            t.single_partition = 1.0;
            for p in &mut t.partitions {
                p.finish = 1.0;
            }
            t
        }
        QueryKind::Begin | QueryKind::Query(_) => {
            let mut t = ProbTable::zeroed(n);
            let seen = v.key.seen();
            // Weighted sum of the children's tables.
            for e in &v.edges {
                if e.prob == 0.0 {
                    continue;
                }
                let child = model.vertex(e.to);
                let ct = &child.table;
                t.abort += e.prob * ct.abort;
                for p in 0..n as usize {
                    t.partitions[p].read += e.prob * ct.partitions[p].read;
                    t.partitions[p].write += e.prob * ct.partitions[p].write;
                    t.partitions[p].finish += e.prob * ct.partitions[p].finish;
                }
                // Single-partition recurrence: the continuation stays
                // single-partitioned iff the child terminates, or the child
                // stays inside the partitions seen so far (still at most
                // one) and itself remains single-partitioned.
                let contrib = match child.key.kind {
                    QueryKind::Commit | QueryKind::Abort => {
                        if seen.len() <= 1 {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    _ => {
                        let within = if seen.is_empty() {
                            child.key.partitions.is_single()
                        } else {
                            child.key.partitions.is_subset(seen)
                        };
                        if within && seen.len() <= 1 {
                            ct.single_partition
                        } else {
                            0.0
                        }
                    }
                };
                t.single_partition += e.prob * contrib;
            }
            // Override for the partitions this vertex's query accesses.
            for p in v.key.partitions.iter() {
                let pp = &mut t.partitions[p as usize];
                if v.is_write {
                    pp.write = 1.0;
                } else {
                    pp.read = 1.0;
                }
                pp.finish = 0.0;
            }
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VertexKey;
    use common::PartitionSet;

    /// begin -> Q(p0) -> {commit 0.9, abort 0.1}
    fn linear_model() -> MarkovModel {
        let mut m = MarkovModel::new(0, 2);
        let q = m.intern(
            VertexKey {
                kind: QueryKind::Query(0),
                counter: 0,
                partitions: PartitionSet::single(0),
                previous: PartitionSet::EMPTY,
            },
            "Q".into(),
            true,
        );
        m.add_transition(m.begin(), q, 10);
        m.add_transition(q, m.commit(), 9);
        m.add_transition(q, m.abort(), 1);
        m.recompute_probabilities();
        compute_tables(&mut m);
        m
    }

    #[test]
    fn terminal_defaults() {
        let m = linear_model();
        let c = m.vertex(m.commit());
        assert_eq!(c.table.abort, 0.0);
        assert_eq!(c.table.finish(0), 1.0);
        let a = m.vertex(m.abort());
        assert_eq!(a.table.abort, 1.0);
    }

    #[test]
    fn accessed_partition_overridden() {
        let m = linear_model();
        let q = m.vertices().iter().position(|v| v.name == "Q").unwrap() as VertexId;
        let t = &m.vertex(q).table;
        assert_eq!(t.partitions[0].write, 1.0, "query writes partition 0");
        assert_eq!(t.partitions[0].finish, 0.0);
        // Partition 1 is never touched downstream: finish = 1 via children.
        assert!((t.partitions[1].finish - 1.0).abs() < 1e-12);
        assert!((t.abort - 0.1).abs() < 1e-12);
        assert!((t.single_partition - 1.0).abs() < 1e-12);
    }

    #[test]
    fn begin_aggregates_children() {
        let m = linear_model();
        let b = m.vertex(m.begin());
        assert!((b.table.abort - 0.1).abs() < 1e-12);
        // From begin, partition 0 will be written with certainty.
        assert!((b.table.partitions[0].write - 1.0).abs() < 1e-12);
        assert!((b.table.single_partition - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distributed_path_kills_single_partition_prob() {
        let mut m = MarkovModel::new(0, 2);
        let q0 = m.intern(
            VertexKey {
                kind: QueryKind::Query(0),
                counter: 0,
                partitions: PartitionSet::single(0),
                previous: PartitionSet::EMPTY,
            },
            "A".into(),
            false,
        );
        let q1 = m.intern(
            VertexKey {
                kind: QueryKind::Query(1),
                counter: 0,
                partitions: PartitionSet::single(1),
                previous: PartitionSet::single(0),
            },
            "B".into(),
            false,
        );
        m.add_transition(m.begin(), q0, 2);
        m.add_transition(q0, q1, 1);
        m.add_transition(q0, m.commit(), 1);
        m.add_transition(q1, m.commit(), 1);
        m.recompute_probabilities();
        compute_tables(&mut m);
        // From q0: 50% commit (single) + 50% go distributed.
        let t = &m.vertex(q0).table;
        assert!((t.single_partition - 0.5).abs() < 1e-12);
        // q1 was reached having seen two partitions: not single any more.
        assert_eq!(m.vertex(q1).table.single_partition, 0.0);
        // Begin's read prob for partition 1 is 0.5.
        assert!((m.vertex(m.begin()).table.partitions[1].read - 0.5).abs() < 1e-12);
    }
}
