//! On-line model maintenance (paper §4.5).
//!
//! As transactions execute, Houdini tracks their actual paths through the
//! model and increments per-edge visit counters. As long as the observed
//! transition choices stay close to the model's expectations, nothing
//! happens; once accuracy over the recent window drops below a threshold
//! (the paper uses 75%), the edge probabilities and probability tables are
//! recomputed from the live counters — a cheap (≤ 5 ms in the paper)
//! operation that adapts the model to workload drift without regeneration.

use crate::model::{MarkovModel, QueryKind, VertexId, VertexKey};
use serde::{Deserialize, Serialize};
use crate::ptable::compute_tables;
use common::{FxHashMap, PartitionSet, QueryId, Value};
use trace::PartitionResolver;

/// Tracks one model's on-line accuracy and triggers recomputation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMonitor {
    /// Observed transitions since the last recomputation.
    observed: u64,
    /// Of those, how many took the model's argmax edge.
    matched: u64,
    /// Accuracy floor below which probabilities are recomputed.
    pub threshold: f64,
    /// Minimum observations before accuracy is judged.
    pub min_window: u64,
    /// Recomputations performed so far.
    pub recomputations: u64,
}

impl Default for ModelMonitor {
    fn default() -> Self {
        ModelMonitor {
            observed: 0,
            matched: 0,
            threshold: 0.75,
            min_window: 200,
            recomputations: 0,
        }
    }
}

/// A transaction's live walk through its model, used both to detect
/// deviation from the initial estimate and to feed maintenance counters.
#[derive(Debug)]
pub struct PathTracker {
    cur: VertexId,
    prev: PartitionSet,
    counters: FxHashMap<QueryId, u16>,
    path: Vec<VertexId>,
}

impl PathTracker {
    /// Starts a walk at `begin`.
    pub fn new(model: &MarkovModel) -> Self {
        PathTracker {
            cur: model.begin(),
            prev: PartitionSet::EMPTY,
            counters: FxHashMap::default(),
            path: vec![model.begin()],
        }
    }

    /// Current vertex.
    pub fn current(&self) -> VertexId {
        self.cur
    }

    /// Vertices visited so far.
    pub fn path(&self) -> &[VertexId] {
        &self.path
    }

    /// Advances the walk with an actually-executed query, creating a
    /// placeholder vertex if the state was never seen in training (§4.4).
    /// Returns the new vertex id.
    pub fn advance(
        &mut self,
        model: &mut MarkovModel,
        query: QueryId,
        partitions: PartitionSet,
        resolver: &dyn PartitionResolver,
    ) -> VertexId {
        let counter = {
            let c = self.counters.entry(query).or_insert(0);
            let cur = *c;
            *c += 1;
            cur
        };
        let key = VertexKey {
            kind: QueryKind::Query(query),
            counter,
            partitions,
            previous: self.prev,
        };
        let name = resolver.query_name(model.proc, query);
        let is_write = resolver.is_write(model.proc, query);
        let next = model.intern(key, name, is_write);
        model.observe_transition(self.cur, next);
        self.prev = self.prev.union(partitions);
        self.path.push(next);
        self.cur = next;
        next
    }

    /// Ends the walk at commit or abort.
    pub fn finish(&mut self, model: &mut MarkovModel, committed: bool) {
        let terminal = if committed { model.commit() } else { model.abort() };
        model.observe_transition(self.cur, terminal);
        self.path.push(terminal);
        self.cur = terminal;
    }

    /// Convenience: resolve a value-bearing query through the resolver and
    /// advance.
    pub fn advance_with_params(
        &mut self,
        model: &mut MarkovModel,
        query: QueryId,
        params: &[Value],
        resolver: &dyn PartitionResolver,
    ) -> VertexId {
        let partitions = resolver.partitions(model.proc, query, params);
        self.advance(model, query, partitions, resolver)
    }
}

impl ModelMonitor {
    /// Creates a monitor with the paper's 75% threshold.
    pub fn new() -> Self {
        ModelMonitor::default()
    }

    /// Records whether an observed transition matched the model's argmax
    /// expectation, and recomputes the model if accuracy fell through the
    /// floor. Returns true if a recomputation happened.
    pub fn observe(&mut self, model: &mut MarkovModel, from: VertexId, to: VertexId) -> bool {
        self.observed += 1;
        let expected = model.vertex(from).argmax_edge().map(|e| e.to);
        if expected == Some(to) {
            self.matched += 1;
        }
        if self.observed >= self.min_window && self.accuracy() < self.threshold {
            model.recompute_probabilities();
            compute_tables(model);
            self.observed = 0;
            self.matched = 0;
            self.recomputations += 1;
            return true;
        }
        false
    }

    /// Fraction of observed transitions matching the model's expectation.
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            self.matched as f64 / self.observed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_model;
    use common::ProcId;
    use trace::{QueryRecord, TraceRecord};

    struct ModResolver {
        parts: u32,
    }

    impl PartitionResolver for ModResolver {
        fn partitions(&self, _p: ProcId, _q: QueryId, params: &[Value]) -> PartitionSet {
            PartitionSet::single(
                (params[0].expect_int().unsigned_abs() % u64::from(self.parts)) as u32,
            )
        }
        fn is_write(&self, _p: ProcId, _q: QueryId) -> bool {
            false
        }
        fn query_name(&self, _p: ProcId, q: QueryId) -> String {
            format!("Q{q}")
        }
        fn num_partitions(&self) -> u32 {
            self.parts
        }
    }

    fn model_one_path() -> MarkovModel {
        let rec = TraceRecord {
            proc: 0,
            params: vec![],
            queries: vec![QueryRecord { query: 0, params: vec![Value::Int(0)] }],
            aborted: false,
        };
        build_model(0, &[&rec], &ModResolver { parts: 2 })
    }

    #[test]
    fn tracker_follows_known_path() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let before = model.len();
        let mut t = PathTracker::new(&model);
        t.advance_with_params(&mut model, 0, &[Value::Int(0)], &r);
        t.finish(&mut model, true);
        assert_eq!(model.len(), before, "no new states for a known path");
        assert_eq!(t.path().len(), 3);
    }

    #[test]
    fn tracker_adds_placeholder_for_new_state() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let before = model.len();
        let mut t = PathTracker::new(&model);
        // Partition 1 was never seen in training.
        t.advance_with_params(&mut model, 0, &[Value::Int(1)], &r);
        t.finish(&mut model, true);
        assert_eq!(model.len(), before + 1);
    }

    #[test]
    fn monitor_recomputes_on_drift() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 50, ..ModelMonitor::default() };
        // Drift: every transaction now goes to partition 1's state.
        let mut recomputed = false;
        for _ in 0..100 {
            let mut t = PathTracker::new(&model);
            let from = t.current();
            let to = t.advance_with_params(&mut model, 0, &[Value::Int(1)], &r);
            recomputed |= mon.observe(&mut model, from, to);
            let cur = t.current();
            t.finish(&mut model, true);
            let commit = model.commit();
            recomputed |= mon.observe(&mut model, cur, commit);
        }
        assert!(recomputed, "drifted workload must trigger recomputation");
        assert!(mon.recomputations >= 1);
        // After recomputation the argmax from begin points at the new state.
        let begin = model.begin();
        let best = model.vertex(begin).argmax_edge().unwrap().to;
        assert_eq!(model.vertex(best).key.partitions, PartitionSet::single(1));
    }

    #[test]
    fn monitor_quiet_when_accurate() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 20, ..ModelMonitor::default() };
        for _ in 0..100 {
            let mut t = PathTracker::new(&model);
            let from = t.current();
            let to = t.advance_with_params(&mut model, 0, &[Value::Int(0)], &r);
            assert!(!mon.observe(&mut model, from, to));
            let cur = t.current();
            t.finish(&mut model, true);
            let commit = model.commit();
            assert!(!mon.observe(&mut model, cur, commit));
        }
        assert_eq!(mon.recomputations, 0);
        assert!(mon.accuracy() > 0.99);
    }
}
