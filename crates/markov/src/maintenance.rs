//! On-line model maintenance (paper §4.5).
//!
//! As transactions execute, Houdini tracks their actual paths through the
//! model and increments per-edge visit counters. As long as the observed
//! transition choices stay close to the model's expectations, nothing
//! happens; once accuracy over the recent window drops below a threshold
//! (the paper uses 75%), the edge probabilities and probability tables are
//! recomputed from the live counters — a cheap (≤ 5 ms in the paper)
//! operation that adapts the model to workload drift without regeneration.

use crate::model::{MarkovModel, QueryKind, VertexId, VertexKey};
use crate::ptable::compute_tables;
use common::{FxHashMap, PartitionSet, QueryId, Value};
use serde::{Deserialize, Serialize};
use trace::PartitionResolver;

/// A state observed live but absent from the trained model: interned as a
/// placeholder vertex into the *next* epoch's model by
/// [`ModelMonitor::recompute`] (the live model itself is never mutated).
#[derive(Debug, Clone)]
pub struct PendingState {
    /// Display name of the query.
    pub name: String,
    /// Whether the query writes data.
    pub is_write: bool,
}

/// Tracks one model's on-line accuracy and triggers recomputation.
///
/// Two consumption modes share the accuracy window:
///
/// * The simulator's `&mut` mode ([`ModelMonitor::observe`]): transitions
///   are folded into the model in place and a drop through the accuracy
///   floor recomputes it immediately.
/// * The live runtime's snapshot mode ([`ModelMonitor::observe_walk`]):
///   the maintenance thread replays each transaction's feedback path
///   against the current *read-only* epoch, accumulating transition deltas
///   and pending placeholder states on the side. When
///   [`ModelMonitor::is_stale`] fires, the maintenance thread clones the
///   drifted model and calls [`ModelMonitor::recompute`] on the clone,
///   which interns the placeholders, folds the deltas, recomputes every
///   probability and table, and leaves the clone ready to publish as the
///   next epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelMonitor {
    /// Observed transitions since the last recomputation.
    observed: u64,
    /// Of those, how many took the model's argmax edge.
    matched: u64,
    /// Accuracy floor below which probabilities are recomputed.
    pub threshold: f64,
    /// Minimum observations before accuracy is judged.
    pub min_window: u64,
    /// Recomputations performed so far.
    pub recomputations: u64,
    /// Live-feedback transition deltas since the last recomputation, keyed
    /// by vertex-key pair so they can be replayed into *any* future clone
    /// of the model (vertex ids are epoch-local, keys are not). Maintenance
    /// thread only; never serialized.
    #[serde(skip)]
    live_transitions: FxHashMap<(VertexKey, VertexKey), u64>,
    /// States observed live that the trained model lacks, waiting to be
    /// interned into the next epoch. Maintenance thread only.
    #[serde(skip)]
    pending: FxHashMap<VertexKey, PendingState>,
}

impl Default for ModelMonitor {
    fn default() -> Self {
        ModelMonitor {
            observed: 0,
            matched: 0,
            threshold: 0.75,
            min_window: 200,
            recomputations: 0,
            live_transitions: FxHashMap::default(),
            pending: FxHashMap::default(),
        }
    }
}

/// A transaction's live walk through its model, used both to detect
/// deviation from the initial estimate and to feed maintenance counters.
#[derive(Debug)]
pub struct PathTracker {
    cur: VertexId,
    prev: PartitionSet,
    counters: FxHashMap<QueryId, u16>,
    path: Vec<VertexId>,
}

impl PathTracker {
    /// Starts a walk at `begin`.
    pub fn new(model: &MarkovModel) -> Self {
        PathTracker {
            cur: model.begin(),
            prev: PartitionSet::EMPTY,
            counters: FxHashMap::default(),
            path: vec![model.begin()],
        }
    }

    /// Current vertex.
    pub fn current(&self) -> VertexId {
        self.cur
    }

    /// Vertices visited so far.
    pub fn path(&self) -> &[VertexId] {
        &self.path
    }

    /// Advances the walk with an actually-executed query, creating a
    /// placeholder vertex if the state was never seen in training (§4.4).
    /// Returns the new vertex id.
    pub fn advance(
        &mut self,
        model: &mut MarkovModel,
        query: QueryId,
        partitions: PartitionSet,
        resolver: &dyn PartitionResolver,
    ) -> VertexId {
        let counter = {
            let c = self.counters.entry(query).or_insert(0);
            let cur = *c;
            *c += 1;
            cur
        };
        let key =
            VertexKey { kind: QueryKind::Query(query), counter, partitions, previous: self.prev };
        let name = resolver.query_name(model.proc, query);
        let is_write = resolver.is_write(model.proc, query);
        let next = model.intern(key, name, is_write);
        model.observe_transition(self.cur, next);
        self.prev = self.prev.union(partitions);
        self.path.push(next);
        self.cur = next;
        next
    }

    /// Ends the walk at commit or abort.
    pub fn finish(&mut self, model: &mut MarkovModel, committed: bool) {
        let terminal = if committed { model.commit() } else { model.abort() };
        model.observe_transition(self.cur, terminal);
        self.path.push(terminal);
        self.cur = terminal;
    }

    /// Convenience: resolve a value-bearing query through the resolver and
    /// advance.
    pub fn advance_with_params(
        &mut self,
        model: &mut MarkovModel,
        query: QueryId,
        params: &[Value],
        resolver: &dyn PartitionResolver,
    ) -> VertexId {
        let partitions = resolver.partitions(model.proc, query, params);
        self.advance(model, query, partitions, resolver)
    }
}

impl ModelMonitor {
    /// Creates a monitor with the paper's 75% threshold.
    pub fn new() -> Self {
        ModelMonitor::default()
    }

    /// Creates a monitor with explicit accuracy floor and window.
    pub fn with_thresholds(threshold: f64, min_window: u64) -> Self {
        ModelMonitor { threshold, min_window, ..ModelMonitor::default() }
    }

    /// Records whether an observed transition matched the model's argmax
    /// expectation, and recomputes the model if accuracy fell through the
    /// floor. Returns true if a recomputation happened.
    pub fn observe(&mut self, model: &mut MarkovModel, from: VertexId, to: VertexId) -> bool {
        self.observed += 1;
        let expected = model.vertex(from).argmax_edge().map(|e| e.to);
        if expected == Some(to) {
            self.matched += 1;
        }
        if self.observed >= self.min_window && self.accuracy() < self.threshold {
            model.recompute_probabilities();
            compute_tables(model);
            self.observed = 0;
            self.matched = 0;
            self.recomputations += 1;
            return true;
        }
        false
    }

    /// Fraction of observed transitions matching the model's expectation.
    pub fn accuracy(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            self.matched as f64 / self.observed as f64
        }
    }

    /// Replays one transaction's executed path against a *read-only* model
    /// snapshot (the live runtime's §4.5 mode): accuracy counters advance,
    /// transition deltas accumulate by vertex key, and states the model has
    /// never seen become pending placeholders for the next epoch.
    ///
    /// A transition counts as *matched* when the model **covers** it: both
    /// states exist and the edge between them carries trained (or
    /// previously folded-in) counts. This is deliberately looser than the
    /// simulator monitor's argmax test: workloads with genuine
    /// data-dependent branching (TATP's per-partition first queries) sit
    /// near 1/partitions argmax accuracy forever, which would read as
    /// permanent drift and thrash the rebuild path; coverage stays ~100%
    /// while the workload matches training and collapses toward 0 exactly
    /// when the workload shifts into states or transitions the model has
    /// never seen — the §4.5 signal worth a rebuild.
    ///
    /// `path` is the executed `(query, partitions)` sequence; `terminal` is
    /// `Some(committed)` for a finished transaction and `None` for a
    /// mispredict-aborted attempt (whose executed prefix is still real
    /// maintenance signal, exactly as the simulator's tracker records it,
    /// but which took no commit/abort edge). Returns the `(observed,
    /// matched)` accuracy delta this walk contributed.
    pub fn observe_walk(
        &mut self,
        model: &MarkovModel,
        path: &[(QueryId, PartitionSet)],
        terminal: Option<bool>,
        resolver: &dyn PartitionResolver,
    ) -> (u64, u64) {
        let mut counters: FxHashMap<QueryId, u16> = FxHashMap::default();
        let mut prev = PartitionSet::EMPTY;
        let mut cur = Some(model.begin());
        let mut cur_key = model.vertex(model.begin()).key;
        let (mut observed, mut matched) = (0u64, 0u64);
        let mut step = |from: Option<VertexId>,
                        from_key: VertexKey,
                        to_key: VertexKey,
                        live_transitions: &mut FxHashMap<(VertexKey, VertexKey), u64>|
         -> Option<VertexId> {
            let to = model.find(&to_key);
            observed += 1;
            if let (Some(f), Some(t)) = (from, to) {
                if model.vertex(f).edge_to(t).is_some_and(|e| e.count > 0) {
                    matched += 1;
                }
            }
            *live_transitions.entry((from_key, to_key)).or_insert(0) += 1;
            to
        };
        for &(query, partitions) in path {
            let counter = {
                let c = counters.entry(query).or_insert(0);
                let seen = *c;
                *c += 1;
                seen
            };
            let key =
                VertexKey { kind: QueryKind::Query(query), counter, partitions, previous: prev };
            let to = step(cur, cur_key, key, &mut self.live_transitions);
            if to.is_none() {
                self.pending.entry(key).or_insert_with(|| PendingState {
                    name: resolver.query_name(model.proc, query),
                    is_write: resolver.is_write(model.proc, query),
                });
            }
            prev = prev.union(partitions);
            cur = to;
            cur_key = key;
        }
        if let Some(committed) = terminal {
            let kind = if committed { QueryKind::Commit } else { QueryKind::Abort };
            let _ = step(cur, cur_key, VertexKey::special(kind), &mut self.live_transitions);
        }
        self.observed += observed;
        self.matched += matched;
        (observed, matched)
    }

    /// True once the accuracy window is full and below the floor — the
    /// signal for the maintenance thread to rebuild this model.
    pub fn is_stale(&self) -> bool {
        self.observed >= self.min_window && self.accuracy() < self.threshold
    }

    /// Folds everything [`ModelMonitor::observe_walk`] accumulated into
    /// `model` — a clone of the snapshot those walks were observed against,
    /// destined to be published as the next epoch. Pending placeholder
    /// states are interned (§4.4), transition deltas become real counts,
    /// and edge probabilities plus probability tables are recomputed from
    /// scratch (§4.5). Clears the accumulator and accuracy window.
    pub fn recompute(&mut self, model: &mut MarkovModel) {
        // Deterministic fold order: hash-map iteration order depends on
        // insertion order, so sort by key before interning and folding —
        // the rebuilt model is then identical for any feedback
        // interleaving that produced the same multiset of observations.
        fn key_ord(k: &VertexKey) -> (u8, u32, u16, u64, u64) {
            let (kind, q) = match k.kind {
                QueryKind::Begin => (0, 0),
                QueryKind::Commit => (1, 0),
                QueryKind::Abort => (2, 0),
                QueryKind::Query(q) => (3, q),
            };
            (kind, q, k.counter, k.partitions.0, k.previous.0)
        }
        let mut pending: Vec<(VertexKey, PendingState)> = self.pending.drain().collect();
        pending.sort_by_key(|(k, _)| key_ord(k));
        for (key, p) in pending {
            model.intern(key, p.name, p.is_write);
        }
        let mut deltas: Vec<((VertexKey, VertexKey), u64)> =
            self.live_transitions.drain().collect();
        deltas.sort_by_key(|&((from, to), _)| (key_ord(&from), key_ord(&to)));
        for ((from, to), n) in deltas {
            // Both endpoints exist: `from`/`to` are special states, trained
            // states, or placeholders interned above. `find` can only miss
            // if the caller recomputed into a model that never saw these
            // walks; skip defensively rather than corrupt it.
            let (Some(f), Some(t)) = (model.find(&from), model.find(&to)) else {
                continue;
            };
            model.add_transition(f, t, n);
        }
        model.recompute_probabilities();
        compute_tables(model);
        self.observed = 0;
        self.matched = 0;
        self.recomputations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_model;
    use common::ProcId;
    use trace::{QueryRecord, TraceRecord};

    struct ModResolver {
        parts: u32,
    }

    impl PartitionResolver for ModResolver {
        fn partitions(&self, _p: ProcId, _q: QueryId, params: &[Value]) -> PartitionSet {
            PartitionSet::single(
                (params[0].expect_int().unsigned_abs() % u64::from(self.parts)) as u32,
            )
        }
        fn is_write(&self, _p: ProcId, _q: QueryId) -> bool {
            false
        }
        fn query_name(&self, _p: ProcId, q: QueryId) -> String {
            format!("Q{q}")
        }
        fn num_partitions(&self) -> u32 {
            self.parts
        }
    }

    fn model_one_path() -> MarkovModel {
        let rec = TraceRecord {
            proc: 0,
            params: vec![],
            queries: vec![QueryRecord { query: 0, params: vec![Value::Int(0)] }],
            aborted: false,
        };
        build_model(0, &[&rec], &ModResolver { parts: 2 })
    }

    #[test]
    fn tracker_follows_known_path() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let before = model.len();
        let mut t = PathTracker::new(&model);
        t.advance_with_params(&mut model, 0, &[Value::Int(0)], &r);
        t.finish(&mut model, true);
        assert_eq!(model.len(), before, "no new states for a known path");
        assert_eq!(t.path().len(), 3);
    }

    #[test]
    fn tracker_adds_placeholder_for_new_state() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let before = model.len();
        let mut t = PathTracker::new(&model);
        // Partition 1 was never seen in training.
        t.advance_with_params(&mut model, 0, &[Value::Int(1)], &r);
        t.finish(&mut model, true);
        assert_eq!(model.len(), before + 1);
    }

    #[test]
    fn monitor_recomputes_on_drift() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 50, ..ModelMonitor::default() };
        // Drift: every transaction now goes to partition 1's state.
        let mut recomputed = false;
        for _ in 0..100 {
            let mut t = PathTracker::new(&model);
            let from = t.current();
            let to = t.advance_with_params(&mut model, 0, &[Value::Int(1)], &r);
            recomputed |= mon.observe(&mut model, from, to);
            let cur = t.current();
            t.finish(&mut model, true);
            let commit = model.commit();
            recomputed |= mon.observe(&mut model, cur, commit);
        }
        assert!(recomputed, "drifted workload must trigger recomputation");
        assert!(mon.recomputations >= 1);
        // After recomputation the argmax from begin points at the new state.
        let begin = model.begin();
        let best = model.vertex(begin).argmax_edge().unwrap().to;
        assert_eq!(model.vertex(best).key.partitions, PartitionSet::single(1));
    }

    #[test]
    fn observe_walk_accumulates_without_mutating_the_snapshot() {
        let model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 10, ..ModelMonitor::default() };
        let before = model.len();
        // Drifted walks: partition 1 was never trained.
        for _ in 0..10 {
            mon.observe_walk(&model, &[(0, PartitionSet::single(1))], Some(true), &r);
        }
        assert_eq!(model.len(), before, "snapshot must stay untouched");
        assert!(mon.accuracy() < 0.5, "dark states cannot match argmax");
        assert!(mon.is_stale());
    }

    #[test]
    fn recompute_interns_pending_states_into_the_next_epoch() {
        let model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 10, ..ModelMonitor::default() };
        for _ in 0..20 {
            mon.observe_walk(&model, &[(0, PartitionSet::single(1))], Some(true), &r);
        }
        assert!(mon.is_stale());
        let mut next = model.clone();
        mon.recompute(&mut next);
        assert_eq!(mon.recomputations, 1);
        assert_eq!(next.len(), model.len() + 1, "placeholder interned");
        // The rebuilt model routes begin's argmax to the drifted state...
        let best = next.vertex(next.begin()).argmax_edge().unwrap().to;
        assert_eq!(next.vertex(best).key.partitions, PartitionSet::single(1));
        // ...and the accumulator/window are clean: the same walks now match.
        let (obs, matched) =
            mon.observe_walk(&next, &[(0, PartitionSet::single(1))], Some(true), &r);
        assert_eq!((obs, matched), (2, 2), "healed model predicts the walk");
        assert!(!mon.is_stale());
    }

    #[test]
    fn observe_walk_mispredict_prefix_has_no_terminal_edge() {
        let model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 4, ..ModelMonitor::default() };
        for _ in 0..8 {
            mon.observe_walk(&model, &[(0, PartitionSet::single(1))], None, &r);
        }
        let mut next = model.clone();
        mon.recompute(&mut next);
        // The interned placeholder has no commit/abort edge: the aborted
        // attempts' prefixes were recorded, their rollback was not.
        let dark = next
            .vertices()
            .iter()
            .position(|v| v.key.partitions == PartitionSet::single(1))
            .expect("placeholder interned");
        assert!(next.vertex(dark as VertexId).edges.is_empty());
    }

    #[test]
    fn recompute_is_interleaving_independent() {
        let model = model_one_path();
        let r = ModResolver { parts: 2 };
        let walks: Vec<Vec<(QueryId, PartitionSet)>> = vec![
            vec![(0, PartitionSet::single(1))],
            vec![(0, PartitionSet::single(0))],
            vec![(0, PartitionSet::single(1))],
        ];
        let rebuild = |order: &[usize]| {
            let mut mon = ModelMonitor { min_window: 1, ..ModelMonitor::default() };
            for &i in order {
                mon.observe_walk(&model, &walks[i], Some(true), &r);
            }
            let mut next = model.clone();
            mon.recompute(&mut next);
            serde_json::to_string(&next).expect("serialize model")
        };
        assert_eq!(rebuild(&[0, 1, 2]), rebuild(&[2, 1, 0]), "order must not matter");
    }

    #[test]
    fn monitor_quiet_when_accurate() {
        let mut model = model_one_path();
        let r = ModResolver { parts: 2 };
        let mut mon = ModelMonitor { min_window: 20, ..ModelMonitor::default() };
        for _ in 0..100 {
            let mut t = PathTracker::new(&model);
            let from = t.current();
            let to = t.advance_with_params(&mut model, 0, &[Value::Int(0)], &r);
            assert!(!mon.observe(&mut model, from, to));
            let cur = t.current();
            t.finish(&mut model, true);
            let commit = model.commit();
            assert!(!mon.observe(&mut model, cur, commit));
        }
        assert_eq!(mon.recomputations, 0);
        assert!(mon.accuracy() > 0.99);
    }
}
