//! Graphviz DOT export — regenerates the paper's model figures (Figs. 4, 9,
//! 10) from any built model.

use crate::model::{MarkovModel, QueryKind};
use std::fmt::Write;

/// Renders the model as a DOT digraph. Edge labels carry probabilities;
/// vertex labels show the four-part state identity.
pub fn to_dot(model: &MarkovModel, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=box, fontsize=10];");
    for (i, v) in model.vertices().iter().enumerate() {
        let label = match v.key.kind {
            QueryKind::Begin => "begin".to_string(),
            QueryKind::Commit => "commit".to_string(),
            QueryKind::Abort => "abort".to_string(),
            QueryKind::Query(_) => format!(
                "{}\\nCounter: {}\\nPartitions: {}\\nPrevious: {}",
                v.name, v.key.counter, v.key.partitions, v.key.previous
            ),
        };
        let shape = match v.key.kind {
            QueryKind::Begin | QueryKind::Commit | QueryKind::Abort => ", shape=ellipse",
            QueryKind::Query(_) => "",
        };
        let _ = writeln!(out, "  v{i} [label=\"{label}\"{shape}];");
    }
    for (i, v) in model.vertices().iter().enumerate() {
        for e in &v.edges {
            let _ = writeln!(out, "  v{i} -> v{} [label=\"{:.2}\"];", e.to, e.prob);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MarkovModel, VertexKey};
    use common::PartitionSet;

    #[test]
    fn dot_contains_states_and_edges() {
        let mut m = MarkovModel::new(0, 2);
        let q = m.intern(
            VertexKey {
                kind: QueryKind::Query(0),
                counter: 0,
                partitions: PartitionSet::single(1),
                previous: PartitionSet::EMPTY,
            },
            "GetWarehouse".into(),
            false,
        );
        m.add_transition(m.begin(), q, 1);
        m.add_transition(q, m.commit(), 1);
        m.recompute_probabilities();
        let dot = to_dot(&m, "NewOrder");
        assert!(dot.contains("digraph \"NewOrder\""));
        assert!(dot.contains("GetWarehouse"));
        assert!(dot.contains("Partitions: {1}"));
        assert!(dot.contains("label=\"1.00\""));
        assert!(dot.ends_with("}\n"));
    }
}
