// Fixture: a properly annotated `Ordering::` use. With the matching
// allowlist entry it passes; without one, only the allowlist rule trips.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(flag: &AtomicU64) {
    // ordering: Release publishes everything written before the flag flip.
    flag.store(1, Ordering::Release);
}
