// Fixture: a LockManager::acquire whose claim loop reverses the partition
// order — the seeded deadlock the ascending-locks rule exists to catch.

impl LockManager {
    fn acquire(&self, set: PartitionSet) {
        // ordering: Relaxed — ticket only needs uniqueness.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        for p in set.iter().rev() {
            let shard = &self.shards[p as usize];
            let mut st = shard.state.lock().expect("lock shard poisoned");
            st.waiters.push_back(ticket);
            while st.busy || st.waiters.front() != Some(&ticket) {
                st = shard.cv.wait(st).expect("lock shard poisoned");
            }
            st.waiters.pop_front();
            st.busy = true;
        }
    }
}
