// Fixture: worker-path channel sends that panic on disconnect instead of
// handling the shutdown race.

fn worker(tx: &Sender<u64>, results: &Sender<u64>) {
    tx.send(1).unwrap();
    results.send(2).expect("peer hung up");
    // Fine: the disconnect is handled.
    let _ = tx.send(3);
}
