// Fixture: a facade-ported module naming `std::sync` directly — the model
// checker would silently skip this mutex.

use std::sync::Mutex;

pub struct Cell {
    inner: Mutex<u64>,
}

#[cfg(test)]
mod tests {
    // Exempt: integration-style tests run on real threads.
    use std::sync::Arc;

    #[test]
    fn hammer() {
        let _ = Arc::new(0u64);
    }
}
