// Fixture: an atomic ordering use with no adjacent rationale comment
// (the allowlist entry exists, so only the rationale rule should trip).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
