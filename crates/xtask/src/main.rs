use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => xtask::lint(),
        _ => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}
