//! Text/line-based repo-invariant lints (`cargo xtask lint`).
//!
//! Four rules, all enforced over the non-test code under `crates/` (see
//! DESIGN.md §"Concurrency model & checking" for the invariants they guard):
//!
//! * **ordering-rationale** — every `Ordering::` use carries an adjacent
//!   `// ordering:` rationale comment *and* a `file :: Ordering::Variant`
//!   entry in `crates/xtask/ordering_allowlist.txt`. Stale allowlist
//!   entries fail too, so the list always mirrors the tree.
//! * **ascending-locks** — `LockManager::acquire` in `engine/src/runtime.rs`
//!   claims partitions via `for p in set.iter()` (ascending by
//!   construction) and its body contains no reversal (`.rev()` /
//!   `Reverse`); deadlock-freedom rests on this order.
//! * **facade-purity** — modules ported to `common::sync` (`epoch.rs`,
//!   `runtime.rs`) must not name `std::sync` outside `#[cfg(test)]`: a
//!   stray std type would silently bypass the model checker.
//! * **send-unwrap** — no `unwrap()` / `expect(` on channel `.send(` calls
//!   in `runtime.rs` worker paths: a shutdown race would escalate a benign
//!   disconnect into a panic.
//!
//! Deliberately text-based (no `syn`, no dependencies): the rules key on
//! line patterns plus a brace-tracked `#[cfg(test)]` mask, which is robust
//! enough for the repo's formatting and keeps the tool offline-buildable.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation, printed `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    /// 1-based; 0 for file-level findings (e.g. a stale allowlist entry).
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Files ported to the `common::sync` facade: `std::sync` is banned in
/// their non-test code (the facade itself and test modules are exempt).
const FACADE_PORTED: &[&str] = &[
    "crates/common/src/epoch.rs",
    "crates/common/src/flush.rs",
    "crates/common/src/ring.rs",
    "crates/engine/src/runtime.rs",
];

/// The file whose lock-claim loop and send calls get the pattern rules.
const RUNTIME_RS: &str = "crates/engine/src/runtime.rs";

/// Entry point for `cargo xtask lint`.
pub fn lint() -> ExitCode {
    let root = repo_root();
    match lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: ok");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved from this crate's manifest dir so the lint
/// works from any working directory.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

/// Lints every `.rs` file under `<root>/crates` (excluding `crates/xtask`
/// itself, whose source spells out the patterns it greps for).
pub fn lint_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let allowlist = load_allowlist(&root.join("crates/xtask/ordering_allowlist.txt"))?;
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)
        .map_err(|e| format!("walking crates/: {e}"))?;
    files.sort();

    let mut violations = Vec::new();
    let mut used_entries: BTreeSet<String> = BTreeSet::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        if rel.starts_with("crates/xtask/") {
            continue;
        }
        let content = std::fs::read_to_string(path).map_err(|e| format!("{rel}: {e}"))?;
        violations.extend(check_file(&rel, &content, &allowlist, &mut used_entries));
    }
    for stale in allowlist.difference(&used_entries) {
        violations.push(Violation {
            file: "crates/xtask/ordering_allowlist.txt".into(),
            line: 0,
            rule: "ordering-rationale",
            message: format!("stale allowlist entry (no matching use in the tree): {stale}"),
        });
    }
    Ok(violations)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Parses the allowlist: one `path :: Ordering::Variant` entry per line;
/// `#` comments and blank lines ignored.
pub fn load_allowlist(path: &Path) -> Result<BTreeSet<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(parse_allowlist(&text))
}

pub fn parse_allowlist(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

/// Runs every applicable rule on one file. `used_entries` collects the
/// allowlist entries this file consumed (for staleness reporting).
pub fn check_file(
    rel: &str,
    content: &str,
    allowlist: &BTreeSet<String>,
    used_entries: &mut BTreeSet<String>,
) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    // Integration tests and benches run on real threads and may use std
    // primitives and unwraps freely.
    let all_test = rel.contains("/tests/") || rel.contains("/benches/");
    let mask = if all_test { vec![true; lines.len()] } else { test_mask(&lines) };

    let mut out = Vec::new();
    if !all_test {
        out.extend(rule_ordering_rationale(rel, &lines, &mask, allowlist, used_entries));
    }
    if rel.ends_with(RUNTIME_RS) || rel == RUNTIME_RS {
        out.extend(rule_ascending_locks(rel, &lines, &mask));
        out.extend(rule_send_unwrap(rel, &lines, &mask));
    }
    if FACADE_PORTED.iter().any(|f| rel == *f || rel.ends_with(f)) {
        out.extend(rule_facade_purity(rel, &lines, &mask));
    }
    out
}

/// `mask[i]` is true when line `i` is inside a `#[cfg(test)]` item. Brace
/// counting is textual; good enough because test modules close at end of
/// file in this repo's style.
pub fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut in_test = false;
    let mut armed = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = strip_comment(raw);
        if !in_test && code.contains("#[cfg(test)]") {
            armed = true;
            mask[i] = true;
            continue;
        }
        if armed {
            mask[i] = true;
            let opens = code.matches('{').count() as i32;
            let closes = code.matches('}').count() as i32;
            if opens > 0 {
                in_test = true;
                armed = false;
                depth = opens - closes;
                if depth <= 0 {
                    in_test = false;
                }
            }
            continue;
        }
        if in_test {
            mask[i] = true;
            depth += code.matches('{').count() as i32;
            depth -= code.matches('}').count() as i32;
            if depth <= 0 {
                in_test = false;
            }
        }
    }
    mask
}

/// Drops a trailing `//` comment (also swallows `//!` and `///` doc lines).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// An `Ordering::` use is "annotated" when `// ordering:` appears on the
/// line itself or in the comment block immediately above its statement
/// (tolerating up to two interposed non-comment lines, e.g. a fn signature
/// between the block and the use).
fn has_adjacent_rationale(lines: &[&str], i: usize) -> bool {
    if lines[i].contains("// ordering:") {
        return true;
    }
    let mut j = i;
    let mut grace = 2;
    while j > 0 {
        j -= 1;
        if lines[j].trim_start().starts_with("//") {
            // Scan the whole consecutive comment block.
            loop {
                if lines[j].contains("// ordering:") {
                    return true;
                }
                if j == 0 || !lines[j - 1].trim_start().starts_with("//") {
                    return false;
                }
                j -= 1;
            }
        }
        if grace == 0 {
            return false;
        }
        grace -= 1;
    }
    false
}

fn rule_ordering_rationale(
    rel: &str,
    lines: &[&str],
    mask: &[bool],
    allowlist: &BTreeSet<String>,
    used_entries: &mut BTreeSet<String>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let code = strip_comment(raw);
        if !code.contains("Ordering::") {
            continue;
        }
        if !has_adjacent_rationale(lines, i) {
            out.push(Violation {
                file: rel.into(),
                line: i + 1,
                rule: "ordering-rationale",
                message: format!(
                    "`Ordering::` use without an adjacent `// ordering:` rationale \
                     comment: {}",
                    code.trim()
                ),
            });
        }
        for variant in ordering_variants(code) {
            let entry = format!("{rel} :: {variant}");
            if allowlist.contains(&entry) {
                used_entries.insert(entry);
            } else {
                out.push(Violation {
                    file: rel.into(),
                    line: i + 1,
                    rule: "ordering-rationale",
                    message: format!(
                        "`{variant}` not in crates/xtask/ordering_allowlist.txt \
                         (add `{entry}` once the rationale is reviewed)"
                    ),
                });
            }
        }
    }
    out
}

/// Every `Ordering::Variant` token on a code line.
fn ordering_variants(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("Ordering::") {
        let tail = &rest[pos + "Ordering::".len()..];
        let end = tail.find(|c: char| !c.is_ascii_alphanumeric() && c != '_').unwrap_or(tail.len());
        out.push(format!("Ordering::{}", &tail[..end]));
        rest = &tail[end..];
    }
    out
}

fn rule_ascending_locks(rel: &str, lines: &[&str], mask: &[bool]) -> Vec<Violation> {
    // Locate the body of `fn acquire(&self, set: PartitionSet)`.
    let Some(start) = lines.iter().enumerate().find_map(|(i, l)| {
        (!mask[i] && strip_comment(l).contains("fn acquire(&self, set: PartitionSet)")).then_some(i)
    }) else {
        return vec![Violation {
            file: rel.into(),
            line: 0,
            rule: "ascending-locks",
            message: "LockManager::acquire not found — the lock-order lint no longer \
                      matches the code; update the pattern alongside the refactor"
                .into(),
        }];
    };
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    let mut entered = false;
    let mut saw_ascending_loop = false;
    for (i, raw) in lines.iter().enumerate().skip(start) {
        let code = strip_comment(raw);
        depth += code.matches('{').count() as i32;
        depth -= code.matches('}').count() as i32;
        if depth > 0 {
            entered = true;
        }
        if code.contains("for p in set.iter()") && !code.contains(".rev()") {
            saw_ascending_loop = true;
        }
        if code.contains(".rev()") || code.contains("Reverse") {
            out.push(Violation {
                file: rel.into(),
                line: i + 1,
                rule: "ascending-locks",
                message: format!(
                    "partition claim loop in LockManager::acquire reverses its order \
                     (deadlock-freedom depends on ascending claims): {}",
                    code.trim()
                ),
            });
        }
        if entered && depth <= 0 {
            break;
        }
    }
    if !saw_ascending_loop {
        out.push(Violation {
            file: rel.into(),
            line: start + 1,
            rule: "ascending-locks",
            message: "LockManager::acquire must claim partitions via `for p in set.iter()` \
                      (ascending partition order)"
                .into(),
        });
    }
    out
}

fn rule_facade_purity(rel: &str, lines: &[&str], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let code = strip_comment(raw);
        if code.contains("std::sync") {
            out.push(Violation {
                file: rel.into(),
                line: i + 1,
                rule: "facade-purity",
                message: format!(
                    "`std::sync` in a module ported to `common::sync` (use the facade so \
                     the model checker covers this code): {}",
                    code.trim()
                ),
            });
        }
    }
    out
}

fn rule_send_unwrap(rel: &str, lines: &[&str], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, raw) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let code = strip_comment(raw);
        // Only unwrap/expect *after* the send call target the send's
        // Result; an `.expect(...)` earlier in the chain (e.g. unwrapping
        // the Option holding the sender) is a different story.
        let flagged = code.find(".send(").is_some_and(|s| {
            let after = &code[s..];
            after.contains(".unwrap()") || after.contains(".expect(")
        });
        if flagged {
            out.push(Violation {
                file: rel.into(),
                line: i + 1,
                rule: "send-unwrap",
                message: format!(
                    "channel send unwrapped in a worker path (a shutdown race would \
                     panic; handle the disconnect): {}",
                    code.trim()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    }

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn missing_rationale_fixture_fails() {
        let src = fixture("missing_rationale.rs");
        let allow = parse_allowlist("fixtures/missing_rationale.rs :: Ordering::Relaxed");
        let mut used = BTreeSet::new();
        let v = check_file("fixtures/missing_rationale.rs", &src, &allow, &mut used);
        assert_eq!(rules_of(&v), ["ordering-rationale"], "{v:?}");
        assert!(v[0].message.contains("// ordering:"), "{}", v[0].message);
    }

    #[test]
    fn missing_allowlist_entry_fixture_fails() {
        let src = fixture("missing_allowlist.rs");
        let allow = BTreeSet::new();
        let mut used = BTreeSet::new();
        let v = check_file("fixtures/missing_allowlist.rs", &src, &allow, &mut used);
        assert_eq!(rules_of(&v), ["ordering-rationale"], "{v:?}");
        assert!(v[0].message.contains("allowlist"), "{}", v[0].message);
    }

    #[test]
    fn annotated_and_allowlisted_use_passes() {
        let src = fixture("missing_allowlist.rs");
        let allow = parse_allowlist("fixtures/missing_allowlist.rs :: Ordering::Release");
        let mut used = BTreeSet::new();
        let v = check_file("fixtures/missing_allowlist.rs", &src, &allow, &mut used);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(used.len(), 1);
    }

    #[test]
    fn descending_locks_fixture_fails() {
        let src = fixture("descending_locks.rs");
        let mut used = BTreeSet::new();
        let v = check_file(
            "crates/engine/src/runtime.rs",
            &src,
            &parse_allowlist("crates/engine/src/runtime.rs :: Ordering::Relaxed"),
            &mut used,
        );
        assert!(
            rules_of(&v).contains(&"ascending-locks"),
            "expected ascending-locks violation: {v:?}"
        );
    }

    #[test]
    fn std_sync_fixture_fails() {
        let src = fixture("std_sync_import.rs");
        let mut used = BTreeSet::new();
        let v = check_file("crates/common/src/epoch.rs", &src, &BTreeSet::new(), &mut used);
        assert!(rules_of(&v).contains(&"facade-purity"), "expected facade-purity violation: {v:?}");
        // The same text inside #[cfg(test)] is exempt.
        assert_eq!(
            v.iter().filter(|x| x.rule == "facade-purity").count(),
            1,
            "test-module use must be exempt: {v:?}"
        );
    }

    #[test]
    fn send_unwrap_fixture_fails() {
        let src = fixture("send_unwrap.rs");
        let mut used = BTreeSet::new();
        let v = check_file("crates/engine/src/runtime.rs", &src, &BTreeSet::new(), &mut used);
        let sends: Vec<_> = v.iter().filter(|x| x.rule == "send-unwrap").collect();
        assert_eq!(sends.len(), 2, "unwrap() and expect() must both trip: {v:?}");
    }

    #[test]
    fn test_mask_covers_cfg_test_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines: Vec<&str> = src.lines().collect();
        let mask = test_mask(&lines);
        assert_eq!(mask, [false, true, true, true, true, false]);
    }

    #[test]
    fn lint_repo_tree_is_clean() {
        let violations = lint_tree(&repo_root()).expect("lint walks the tree");
        assert!(
            violations.is_empty(),
            "repo must be lint-clean:\n{}",
            violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
