//! Vendored stand-in for `serde_derive`, written against the raw
//! `proc_macro` API (the offline build has no `syn`/`quote`).
//!
//! Supports the shapes this repository uses:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs;
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally-tagged, serde's default representation);
//! * `#[serde(skip)]` on named fields (omitted on write, `Default` on read);
//! * container-level `#[serde(from = "T", into = "T")]`.
//!
//! Generics are intentionally unsupported — deriving on a generic type
//! produces a `compile_error!` naming this file, so the gap is loud rather
//! than silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Unnamed(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// `from = "T"` container attribute, if present.
    from_ty: Option<String>,
    /// `into = "T"` container attribute, if present.
    into_ty: Option<String>,
    kind: Kind,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(msg) => {
            let lit = format!("compile_error!({:?});", msg);
            return lit.parse().unwrap();
        }
    };
    let code = match dir {
        Direction::Serialize => gen_serialize(&parsed),
        Direction::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive codegen parse failure: {e:?}\");").parse().unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True if the token is the `#` punct that starts an attribute.
fn is_pound(t: &TokenTree) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == '#')
}

/// Collects `skip` / `from` / `into` markers out of one `#[serde(...)]`
/// attribute body.
fn scan_serde_attr(
    body: TokenStream,
    skip: &mut bool,
    from: &mut Option<String>,
    into: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let word = id.to_string();
            match word.as_str() {
                "skip" => *skip = true,
                "from" | "into" => {
                    // expect `= "Type"`
                    if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                        let raw = lit.to_string();
                        let ty = raw.trim_matches('"').to_string();
                        if word == "from" {
                            *from = Some(ty);
                        } else {
                            *into = Some(ty);
                        }
                        i += 2;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Consumes one attribute (the tokens after `#`); records serde markers.
fn eat_attr(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    skip: &mut bool,
    from: &mut Option<String>,
    into: &mut Option<String>,
) {
    if let Some(TokenTree::Group(g)) = iter.next() {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    scan_serde_attr(args.stream(), skip, from, into);
                }
            }
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, `pub(in ...)`).
fn eat_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();
    let mut from_ty = None;
    let mut into_ty = None;
    let mut ignored_skip = false;

    // Outer attributes + visibility.
    loop {
        match iter.peek() {
            Some(t) if is_pound(t) => {
                iter.next();
                eat_attr(&mut iter, &mut ignored_skip, &mut from_ty, &mut into_ty);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => eat_vis(&mut iter),
            _ => break,
        }
    }

    let kind_word = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    if kind_word != "struct" && kind_word != "enum" {
        return Err(format!("serde_derive: expected struct/enum, got `{kind_word}`"));
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };

    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored, vendor/serde_derive): generic type `{name}` is not \
             supported; write the impls by hand or extend the vendored derive"
        ));
    }

    let kind = if kind_word == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Unnamed(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => return Err(format!("serde_derive: unexpected struct body {other:?}")),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde_derive: unexpected enum body {other:?}")),
        }
    };

    Ok(Input { name, from_ty, into_ty, kind })
}

/// Parses `name: Type, ...` with per-field attributes, tracking `<...>`
/// depth so commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        let mut from = None;
        let mut into = None;
        // attrs + vis
        loop {
            match iter.peek() {
                Some(t) if is_pound(t) => {
                    iter.next();
                    eat_attr(&mut iter, &mut skip, &mut from, &mut into);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => eat_vis(&mut iter),
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!("serde_derive: expected `:` after `{name}`, got {other:?}"))
            }
        }
        // consume the type up to a top-level comma
        let mut angle: i32 = 0;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle: i32 = 0;
    let mut count = 0;
    let mut saw_token = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        let mut from = None;
        let mut into = None;
        while matches!(iter.peek(), Some(t) if is_pound(t)) {
            iter.next();
            eat_attr(&mut iter, &mut skip, &mut from, &mut into);
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde_derive: expected variant name, got {other:?}")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        // optional `= discriminant`, then `,`
        let mut angle: i32 = 0;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    iter.next();
                    break;
                }
                _ => {
                    iter.next();
                }
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(into) = &input.into_ty {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Content {{\n\
                     let __conv: {into} = <{into} as ::std::convert::From<{name}>>::from(\
                         ::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::serialize(&__conv)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.kind {
        Kind::Struct(fields) => ser_fields_expr(name, fields, FieldAccess::SelfDot),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Content::Str(\"{vname}\".to_string()),\n"
                        ));
                    }
                    Fields::Unnamed(1) => {
                        arms.push_str(&format!(
                            "{name}::{vname}(ref __f0) => ::serde::Content::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Serialize::serialize(__f0))]),\n"
                        ));
                    }
                    Fields::Unnamed(n) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("ref __f{i}")).collect();
                        let sers: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            sers.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let pats: Vec<String> =
                            fs.iter().map(|f| format!("ref {}", f.name)).collect();
                        let mut pushes = String::new();
                        for f in fs {
                            if f.skip {
                                continue;
                            }
                            pushes.push_str(&format!(
                                "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                                 {pushes}\
                                 ::serde::Content::Map(vec![(\"{vname}\".to_string(), ::serde::Content::Map(__m))])\n\
                             }}\n",
                            pats.join(", ")
                        ));
                    }
                }
            }
            format!("match *self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

enum FieldAccess {
    SelfDot,
}

fn ser_fields_expr(name: &str, fields: &Fields, _access: FieldAccess) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Unnamed(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Fields::Unnamed(n) => {
            let sers: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Content::Seq(vec![{}])", sers.join(", "))
        }
        Fields::Named(fs) => {
            let mut pushes = String::new();
            for f in fs {
                if f.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            let _ = name;
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Content::Map(__m)"
            )
        }
    }
}

/// Generates the struct-literal expression rebuilding named fields from a
/// map bound to `__m` (used for both structs and struct variants).
fn de_named_fields(name_path: &str, type_name: &str, fs: &[Field]) -> String {
    let mut inits = String::new();
    for f in fs {
        if f.skip {
            inits.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
        } else {
            inits.push_str(&format!(
                "{0}: match ::serde::content_get(__m, \"{0}\") {{\n\
                     Some(__v) => ::serde::Deserialize::deserialize(__v)?,\n\
                     None => return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"{type_name}: missing field `{0}`\")),\n\
                 }},\n",
                f.name
            ));
        }
    }
    format!("{name_path} {{\n{inits}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    if let Some(from) = &input.from_ty {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let __conv: {from} = ::serde::Deserialize::deserialize(__c)?;\n\
                     ::std::result::Result::Ok(<{name} as ::std::convert::From<{from}>>::from(__conv))\n\
                 }}\n\
             }}"
        );
    }
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Kind::Struct(Fields::Unnamed(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__c)?))")
        }
        Kind::Struct(Fields::Unnamed(n)) => {
            let mut des = String::new();
            for i in 0..*n {
                des.push_str(&format!("::serde::Deserialize::deserialize(&__s[{i}])?,\n"));
            }
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                     \"{name}: expected array\"))?;\n\
                 if __s.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                         \"{name}: wrong tuple arity\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}(\n{des}))"
            )
        }
        Kind::Struct(Fields::Named(fs)) => {
            let lit = de_named_fields(name, name, fs);
            format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::DeError::custom(\
                     \"{name}: expected object\"))?;\n\
                 ::std::result::Result::Ok({lit})"
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    Fields::Unnamed(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::deserialize(__v)?)),\n"
                        ));
                    }
                    Fields::Unnamed(n) => {
                        let mut des = String::new();
                        for i in 0..*n {
                            des.push_str(&format!(
                                "::serde::Deserialize::deserialize(&__s[{i}])?,\n"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                                     \"{name}::{vname}: expected array\"))?;\n\
                                 if __s.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         \"{name}::{vname}: wrong arity\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}(\n{des}))\n\
                             }}\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        let lit = de_named_fields(
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            fs,
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                                     \"{name}::{vname}: expected object\"))?;\n\
                                 ::std::result::Result::Ok({lit})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"{name}: unknown variant {{__other:?}}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__map) if __map.len() == 1 => {{\n\
                         let (__k, __v) = &__map[0];\n\
                         match __k.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"{name}: unknown variant {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"{name}: expected variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
