//! Vendored stand-in for `serde_json` (offline build): renders the
//! [`serde::Content`] tree to JSON text and parses JSON text back. Covers
//! `to_string` / `from_str`, which is the surface this repository uses.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&content).map_err(|e| Error::new(e.0))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // and always includes `.0` or an exponent for integral values.
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                // surrogate pair
                                if self.bytes.get(start + 4) == Some(&b'\\')
                                    && self.bytes.get(start + 5) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(start + 6..start + 10)
                                        .ok_or_else(|| Error::new("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| Error::new("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| Error::new("bad surrogate"))?;
                                    self.pos += 6;
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c).ok_or_else(|| Error::new("bad surrogate"))?
                                } else {
                                    return Err(Error::new("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("bad \\u escape"))?
                            };
                            out.push(ch);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape \\{}",
                                other.map(|b| b as char).unwrap_or('?')
                            )));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Advance over one UTF-8 char. The input came in as
                    // &str, so sequences are valid; decode just this char
                    // rather than re-validating the whole remaining input.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error::new("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}
