//! Vendored stand-in for `proptest` (offline build).
//!
//! Keeps the subset of proptest's API the repository's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `Strategy` + `prop_map`, range / tuple / `Just` / `any` / collection /
//! simple-regex strategies, `prop_oneof!`, and `prop_assert*` macros.
//!
//! Sampling differs from upstream in two deliberate ways: cases are drawn
//! from a fixed per-test seed (fully deterministic, no persistence files),
//! and there is no shrinking — a failing case panics with the generated
//! inputs' `Debug` rendering instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// The test-case RNG handed to strategies (xoshiro256++, fixed seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Derives the per-test seed from the test function's name, so adding or
/// reordering sibling tests never changes another test's cases.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: combinators like [`prop_oneof!`] box their arms.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats only: tests feed these into arithmetic invariants.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($idx:tt $t:ident)),+) => {
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!((0 A));
impl_tuple_strategy!((0 A), (1 B));
impl_tuple_strategy!((0 A), (1 B), (2 C));
impl_tuple_strategy!((0 A), (1 B), (2 C), (3 D));
impl_tuple_strategy!((0 A), (1 B), (2 C), (3 D), (4 E));
impl_tuple_strategy!((0 A), (1 B), (2 C), (3 D), (4 E), (5 F));

/// Minimal regex-shaped string strategy: supports concatenations of
/// literal characters and `[a-z0-9_]`-style classes, each optionally
/// followed by `{m,n}`, `{n}`, `*`, `+`, or `?`. Covers the patterns used
/// in this repository's tests; anything fancier panics loudly.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // one atom: a char class or a literal character
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        set.push(char::from_u32(c).unwrap());
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"(){}|^$.\\*+?".contains(c),
                "unsupported regex construct {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        // optional repetition
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad {m,n}"),
                    hi.trim().parse::<usize>().expect("bad {m,n}"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad {n}");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let r = match chars[i] {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            };
            i += 1;
            r
        } else {
            (1, 1)
        };
        let count = min + (rng.below((max - min + 1) as u64) as usize);
        for _ in 0..count {
            let pick = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[pick]);
        }
    }
    out
}

/// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T: Debug> {
    pub arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Boxes a strategy for [`prop_oneof!`] (monomorphic helper so the macro
/// needs no inference placeholders in cast position).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec()`]; converts from the range forms the
    /// tests write (`0..20`, `1..=5`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; kept smaller so the suite stays
            // fast — each case re-runs the full test body.
            Config { cases: 96 }
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Runs each body over `cases` deterministically-generated inputs. On
/// failure the generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg(<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::TestRng::from_seed($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    // Render inputs before the body runs: the body may
                    // consume the bindings.
                    let __inputs = ::std::string::String::new()
                        $(+ &format!("  {} = {:?}\n", stringify!($arg), &$arg))*;
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $body
                    }));
                    if let Err(__panic) = __result {
                        eprintln!(
                            "proptest case {}/{} failed for {}; inputs:\n{}",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                            __inputs
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Uniformly picks one of the listed strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$($crate::boxed($arm)),+] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
