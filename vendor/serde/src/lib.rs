//! Vendored stand-in for `serde`, written for this repository's offline
//! build environment (the container has no crates.io access).
//!
//! It keeps the parts of serde's surface this codebase uses: the
//! `Serialize` / `Deserialize` traits, `#[derive(Serialize, Deserialize)]`
//! (including `#[serde(skip)]` and container-level
//! `#[serde(from = "..", into = "..")]`), and enough std impls to cover the
//! types flowing through trace/model/predictor persistence. Instead of
//! serde's visitor architecture, values serialize into a small [`Content`]
//! tree that `serde_json` renders to / parses from JSON text. The JSON wire
//! shapes follow serde's defaults (externally-tagged enums, newtype structs
//! as their inner value) so traces written by this stand-in would also be
//! readable by real serde.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

/// A serialized value: the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Looks a key up in a serialized map (generated derive code calls this).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can be rendered into a [`Content`] tree.
pub trait Serialize {
    fn serialize(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::custom(format!("{v} out of range")))?,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "{v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::custom(format!("{v} out of range")))?,
                    ref other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::custom(format!(
                        "{v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    ref other => Err(DeError::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(std::sync::Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        self.as_slice().serialize()
    }
}

impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {}", other.kind()))),
        }
    }
}

/// Map keys that can live in a JSON object: strings, and integers rendered
/// as decimal strings (matching `serde_json`'s integer-key behavior).
pub trait JsonKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>()
                    .map_err(|_| DeError::custom(format!("bad integer key {key:?}")))
            }
        }
    )*};
}

impl_json_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: JsonKey + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: JsonKey + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.serialize())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?))).collect()
            }
            other => Err(DeError::custom(format!("expected object, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $(($idx:tt $t:ident)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected {}-tuple array, got {}", $len, c.kind()))
                })?;
                if s.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        s.len()
                    )));
                }
                Ok(($($t::deserialize(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => (0 A));
impl_tuple!(2 => (0 A), (1 B));
impl_tuple!(3 => (0 A), (1 B), (2 C));
impl_tuple!(4 => (0 A), (1 B), (2 C), (3 D));
impl_tuple!(5 => (0 A), (1 B), (2 C), (3 D), (4 E));
impl_tuple!(6 => (0 A), (1 B), (2 C), (3 D), (4 E), (5 F));
