//! Vendored stand-in for `criterion` (offline build).
//!
//! Implements the harness surface this repository's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::{bench_function,
//! benchmark_group, sample_size}`, `BenchmarkGroup`, and `Bencher::iter` —
//! with a simple measure: per sample, time a batch of iterations sized so
//! each sample runs ≥ ~1ms, then report the median, minimum, and maximum
//! per-iteration time. No statistical analysis, plots, or baselines.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Harness entry point: carries the default sample count.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A group of benchmarks reported under a common prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_bench(&format!("{}/{}", self.name, id), samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` times the hot path.
pub struct Bencher {
    samples: usize,
    /// Median/min/max per-iteration nanoseconds, filled by `iter`.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, autoscaling the batch size so one sample ≥ ~1ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and find a batch size that makes one sample measurable.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = (batch * 4).min(1 << 20);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        self.result = Some((median, per_iter[0], per_iter[per_iter.len() - 1]));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher { samples, result: None };
    f(&mut b);
    match b.result {
        Some((median, min, max)) => println!(
            "bench {id:<50} median {} (min {}, max {})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max)
        ),
        None => println!("bench {id:<50} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Labeled benchmark ids (`BenchmarkId::new("op", param)`).
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
