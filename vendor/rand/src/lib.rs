//! Vendored stand-in for `rand` (offline build). Implements the surface
//! this repository uses — `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::SmallRng` — and is
//! **bit-compatible with upstream rand 0.8.5 on 64-bit targets**: the same
//! seed yields the same value stream. That matters because the repo's
//! recorded experiments and test expectations were authored against
//! upstream streams. Concretely:
//!
//! * `SmallRng` is xoshiro256++ with rand_xoshiro's SplitMix64
//!   `seed_from_u64`, and `next_u32` truncates `next_u64` (not high bits);
//! * integer `gen_range` uses biased-rejection via widening multiply
//!   (Lemire), with rand 0.8.5's zone computation and draw counts;
//! * float `gen_range` uses the [1,2) mantissa-bits method;
//! * `gen_bool` is Bernoulli: one `u64` draw compared against
//!   `(p * 2^64) as u64`, no draw at `p = 1.0`.

/// The raw entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Truncates (matches rand_xoshiro's 64-bit generators).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a `Standard`-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        if p == 1.0 {
            // rand's Bernoulli ALWAYS_TRUE: no draw consumed.
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        self.next_u64() < (p * SCALE) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_small_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

impl_standard_small_int!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_large_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_large_int!(u64, usize, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5: one u32 draw, decided by its most significant bit
        // (least significant bits of weak generators can show patterns).
        rng.next_u32() & 0x8000_0000 != 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Multiply-based [0,1) with 53 bits of precision (rand 0.8).
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let fraction = rng.next_u32() >> 8;
        fraction as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`]. Generic over the output type `T`
/// (mirroring upstream rand) so that integer literals in range expressions
/// unify with the type the call site expects.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// rand 0.8.5 `uniform_int_impl!` semantics: `$u_large` is the type drawn
/// from the generator and fed through the widening multiply.
macro_rules! impl_sample_uniform_int {
    ($($t:ty => $unsigned:ty, $u_large:ty, $wide:ty, $draw:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                Self::sample_inclusive(rng, lo, hi - 1)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let range = (hi as $unsigned).wrapping_sub(lo as $unsigned).wrapping_add(1)
                    as $u_large;
                if range == 0 {
                    // Span covers the whole type.
                    return rng.$draw() as $t;
                }
                let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$draw() as $u_large;
                    let m = (v as $wide) * (range as $wide);
                    let hi_part = (m >> <$u_large>::BITS) as $u_large;
                    let lo_part = m as $u_large;
                    if lo_part <= zone {
                        return lo.wrapping_add(hi_part as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int! {
    i8 => u8, u32, u64, next_u32;
    u8 => u8, u32, u64, next_u32;
    i16 => u16, u32, u64, next_u32;
    u16 => u16, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    i64 => u64, u64, u128, next_u64;
    u64 => u64, u64, u128, next_u64;
    isize => usize, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty => $draw:ident, $bits:ty, $mant:expr, $exp_one:expr);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let scale = hi - lo;
                loop {
                    // Value in [1, 2): random mantissa bits under exponent 0.
                    let bits: $bits = rng.$draw() >> ((<$bits>::BITS as usize) - $mant);
                    let value1_2 = <$t>::from_bits($exp_one | bits);
                    let res = (value1_2 - 1.0) * scale + lo;
                    if res < hi {
                        return res;
                    }
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(_rng: &mut R, _lo: Self, _hi: Self) -> Self {
                panic!("gen_range over an inclusive float range is unsupported");
            }
        }
    )*};
}

impl_sample_uniform_float! {
    f64 => next_u64, u64, 52, 0x3ff0_0000_0000_0000u64;
    f32 => next_u32, u32, 23, 0x3f80_0000u32;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded generator: xoshiro256++, matching upstream
    /// rand 0.8's 64-bit `SmallRng` stream for stream compatibility.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state (cannot
            // happen via SplitMix64, kept as a guard for direct seeding).
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference stream for xoshiro256++ with SplitMix64 seeding from
    /// seed 0, verified against an independent implementation of the
    /// published algorithms; guards the stream-compatibility contract.
    #[test]
    fn matches_xoshiro256plusplus_reference() {
        let mut rng = SmallRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x5317_5d61_490b_23df,
                0x61da_6f3d_c380_d507,
                0x5c0f_df91_ec9a_7bfc,
                0x02ee_bf8c_3bbe_5e1a,
            ]
        );
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(2);
        assert_ne!(SmallRng::seed_from_u64(1).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: u32 = rng.gen_range(0..10u32);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
