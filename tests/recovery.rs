//! Kill-and-recover matrix for the durability subsystem (DESIGN.md §7).
//!
//! Each cell runs the `crash_harness` binary as a subprocess: TATP with
//! real command logging (and optionally a consistent snapshot), killed via
//! `std::process::abort()` — no shutdown, no final flush. The test then
//! recovers in-process with [`LiveRuntime::recover`] and pins the result
//! against an *uninterrupted* same-seed run:
//!
//! * the harness's acknowledged commit / user-abort counts equal the
//!   uninterrupted run's (TATP outcomes are interleaving-independent —
//!   see `tests/live_runtime.rs`), and
//! * the recovered database's tables are byte-identical to the
//!   uninterrupted run's, row for row.
//!
//! Matrix: {snapshot-only, log-only, snapshot+log} × {single-partition
//! fast path, forced-distributed}.

use engine::baselines::{AssumeDistributed, AssumeSinglePartition};
use engine::{DurabilityConfig, LiveAdvisor, LiveConfig, LiveRuntime, RunMetrics};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Barrier;
use storage::{Database, Row};
use workloads::Bench;

// Mirrors src/bin/crash_harness.rs; keep in sync.
const PARTS: u32 = 2;
const CLIENTS: u64 = 4;
const PHASE1: u64 = 150;
const PHASE2: u64 = 100;
const SEED: u64 = 417;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The uninterrupted twin of the harness run: same seed, same client
/// streams, same request counts, no durability, clean shutdown.
fn baseline<A: LiveAdvisor + 'static>(advisor: A, with_phase2: bool) -> (RunMetrics, Database) {
    let db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let cfg = LiveConfig { seed: SEED, ..Default::default() };
    let rt = LiveRuntime::start(db, reg, advisor, cfg);
    let phase2 = if with_phase2 { PHASE2 } else { 0 };
    let barrier = Barrier::new(CLIENTS as usize);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let mut client = rt.client();
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen = Bench::Tatp.client_generator(PARTS, SEED, c);
                for _ in 0..PHASE1 {
                    let (proc, args) = gen.next_request(client.id());
                    client.call(proc, args).expect("baseline phase-1 call");
                }
                barrier.wait();
                for _ in 0..phase2 {
                    let (proc, args) = gen.next_request(client.id());
                    client.call(proc, args).expect("baseline phase-2 call");
                }
            });
        }
    });
    rt.shutdown()
}

/// Sorted full contents of every table, merged across partitions — the
/// byte-identical-state comparator.
fn table_state(db: &Database) -> Vec<Vec<Row>> {
    (0..db.schemas().len())
        .map(|t| {
            let mut rows: Vec<Row> =
                (0..PARTS).flat_map(|p| db.table(p, t).sorted_rows()).collect();
            rows.sort();
            rows
        })
        .collect()
}

fn parse_counts(stdout: &str) -> (u64, u64) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("CRASH "))
        .expect("harness printed its CRASH line before dying");
    let field = |key: &str| -> u64 {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(key))
            .expect("counter present")
            .parse()
            .expect("numeric counter")
    };
    (field("committed="), field("user_aborts="))
}

fn kill_and_recover<A, B>(make_advisor: impl Fn() -> A, tag: &str, mode: &str, baseline_run: B)
where
    A: LiveAdvisor + 'static,
    B: FnOnce() -> (RunMetrics, Database),
{
    let dir = tmpdir(tag);
    let out = Command::new(env!("CARGO_BIN_EXE_crash_harness"))
        .arg(&dir)
        .args([if tag.starts_with("sp") { "sp" } else { "dist" }, mode])
        .arg(SEED.to_string())
        .output()
        .expect("spawn crash_harness");
    assert!(!out.status.success(), "the harness must die by abort, not exit cleanly");
    let (committed, user_aborts) = parse_counts(&String::from_utf8_lossy(&out.stdout));

    let (base_metrics, base_db) = baseline_run();
    assert_eq!(
        (committed, user_aborts),
        (base_metrics.committed, base_metrics.user_aborts),
        "acknowledged outcomes must match the uninterrupted run ({tag}/{mode})"
    );

    let cfg = LiveConfig {
        seed: SEED,
        durability: Some(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let (rt, report) = LiveRuntime::recover(
        Bench::Tatp.database(PARTS),
        Bench::Tatp.registry(),
        make_advisor(),
        cfg,
    );
    let (metrics, recovered_db) = rt.shutdown();
    assert!(metrics.recovery_ms > 0.0);
    if mode == "snap" {
        assert_eq!(report.replayed, 0, "snapshot-only recovery has nothing to replay");
        assert!(report.snapshot_gen.is_some());
    }
    if mode == "log" {
        assert!(report.snapshot_gen.is_none());
        assert!(report.replayed > 0, "log-only recovery must replay the committed writers");
    }
    if mode == "snaplog" {
        assert!(report.snapshot_gen.is_some());
        assert!(report.replayed > 0, "phase-2 writers replay on top of the snapshot");
    }
    assert_eq!(
        table_state(&base_db),
        table_state(&recovered_db),
        "recovered tables must be byte-identical to the uninterrupted run ({tag}/{mode})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_partition_log_only() {
    kill_and_recover(AssumeSinglePartition::new, "sp-log", "log", || {
        baseline(AssumeSinglePartition::new(), false)
    });
}

#[test]
fn single_partition_snapshot_only() {
    kill_and_recover(AssumeSinglePartition::new, "sp-snap", "snap", || {
        baseline(AssumeSinglePartition::new(), false)
    });
}

#[test]
fn single_partition_snapshot_plus_log() {
    kill_and_recover(AssumeSinglePartition::new, "sp-snaplog", "snaplog", || {
        baseline(AssumeSinglePartition::new(), true)
    });
}

#[test]
fn distributed_log_only() {
    kill_and_recover(AssumeDistributed::new, "dist-log", "log", || {
        baseline(AssumeDistributed::new(), false)
    });
}

#[test]
fn distributed_snapshot_only() {
    kill_and_recover(AssumeDistributed::new, "dist-snap", "snap", || {
        baseline(AssumeDistributed::new(), false)
    });
}

#[test]
fn distributed_snapshot_plus_log() {
    kill_and_recover(AssumeDistributed::new, "dist-snaplog", "snaplog", || {
        baseline(AssumeDistributed::new(), true)
    });
}
