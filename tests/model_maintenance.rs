//! Workload-drift integration test (paper §4.5): models trained on one
//! workload keep serving after the workload shifts, and the on-line
//! maintenance recomputes probabilities from the live counters instead of
//! requiring regeneration.

use engine::{run_offline, CostModel, RequestGenerator, SimConfig, Simulation};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use trace::Workload;
use workloads::{tpcc, Bench};

fn tpcc_trace(parts: u32, n: usize, remote_prob: f64, seed: u64) -> (engine::Catalog, Workload) {
    let mut db = Bench::Tpcc.database(parts);
    let registry = Bench::Tpcc.registry();
    let catalog = registry.catalog();
    let mut gen = tpcc::Generator::new(parts, seed);
    gen.remote_item_prob = remote_prob;
    gen.remote_payment_prob = remote_prob;
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 8);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true).expect("trace txn");
        records.push(out.record);
    }
    (catalog, Workload { records })
}

#[test]
fn drifted_workload_triggers_recomputation_and_still_commits() {
    let parts = 4;
    // Train on an all-local workload...
    let (catalog, wl) = tpcc_trace(parts, 1200, 0.0, 5);
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let mut houdini = Houdini::new(preds, catalog, parts, HoudiniConfig::default());

    // ...then run a workload where half the items are remote.
    let mut db = Bench::Tpcc.database(parts);
    let registry = Bench::Tpcc.registry();
    let mut gen = tpcc::Generator::new(parts, 7);
    gen.remote_item_prob = 0.5;
    gen.remote_payment_prob = 0.5;
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 50_000.0,
        measure_us: 400_000.0,
        ..Default::default()
    };
    let sim =
        Simulation::new(&mut db, &registry, &mut houdini, &mut gen, CostModel::default(), cfg);
    let (metrics, _) = sim.run().expect("drifted run must not halt");

    assert!(metrics.committed > 200, "committed = {}", metrics.committed);
    assert!(
        houdini.recomputations >= 1,
        "drift must trigger at least one §4.5 recomputation \
         (got {}, restarts {})",
        houdini.recomputations,
        metrics.restarts
    );
}

#[test]
fn stable_workload_does_not_thrash_the_models() {
    let parts = 4;
    let (catalog, wl) = tpcc_trace(parts, 1200, 0.02, 5);
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let mut houdini = Houdini::new(preds, catalog, parts, HoudiniConfig::default());

    let mut db = Bench::Tpcc.database(parts);
    let registry = Bench::Tpcc.registry();
    let mut gen = tpcc::Generator::new(parts, 7); // same distribution as training
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 50_000.0,
        measure_us: 300_000.0,
        ..Default::default()
    };
    let sim =
        Simulation::new(&mut db, &registry, &mut houdini, &mut gen, CostModel::default(), cfg);
    let (metrics, _) = sim.run().expect("stable run");
    assert!(metrics.committed > 200);
    assert!(
        houdini.recomputations <= 2,
        "a matching workload should rarely trip maintenance (got {})",
        houdini.recomputations
    );
}
