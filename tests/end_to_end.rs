//! End-to-end integration tests: trace collection → training → timed
//! simulation for every benchmark, plus cross-advisor sanity properties.

use engine::baselines::{AssumeDistributed, AssumeSinglePartition, Oracle};
use engine::run_offline;
use predictive_oltp::prelude::*;

fn collect(bench: Bench, parts: u32, n: usize, seed: u64) -> (engine::Catalog, Workload) {
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();
    let mut gen = bench.generator(parts, seed);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 16);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true)
            .expect("offline trace txn");
        records.push(out.record);
    }
    (catalog, Workload { records })
}

fn simulate(
    bench: Bench,
    parts: u32,
    advisor: &mut dyn TxnAdvisor,
    seed: u64,
) -> engine::RunMetrics {
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let mut gen = bench.generator(parts, seed);
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 50_000.0,
        measure_us: 250_000.0,
        ..Default::default()
    };
    let sim = Simulation::new(&mut db, &registry, advisor, &mut gen, CostModel::default(), cfg);
    sim.run().expect("simulation must not halt").0
}

#[test]
fn houdini_runs_every_benchmark() {
    for bench in Bench::ALL {
        let parts = 4;
        let (catalog, wl) = collect(bench, parts, 1000, 11);
        let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
        let mut houdini = Houdini::new(preds, catalog, parts, HoudiniConfig::default());
        let m = simulate(bench, parts, &mut houdini, 13);
        assert!(m.committed > 200, "{}: committed = {}", bench.name(), m.committed);
        assert!(m.throughput_tps() > 500.0, "{}: tps = {}", bench.name(), m.throughput_tps());
    }
}

#[test]
fn houdini_beats_assume_single_partition_on_tatp() {
    let parts = 8;
    let (catalog, wl) = collect(Bench::Tatp, parts, 1500, 21);
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let mut houdini = Houdini::new(preds, catalog, parts, HoudiniConfig::default());
    let mh = simulate(Bench::Tatp, parts, &mut houdini, 23);
    let mut asp = AssumeSinglePartition::new();
    let ma = simulate(Bench::Tatp, parts, &mut asp, 23);
    // The paper reports a 26%+ TATP improvement (§6.4); require a clear win.
    assert!(
        mh.throughput_tps() > 1.2 * ma.throughput_tps(),
        "houdini {} vs assume-sp {}",
        mh.throughput_tps(),
        ma.throughput_tps()
    );
}

#[test]
fn everyone_beats_assume_distributed() {
    let parts = 8;
    let mut adist = AssumeDistributed::new();
    let md = simulate(Bench::Tpcc, parts, &mut adist, 31);
    let mut oracle = Oracle::new();
    let mo = simulate(Bench::Tpcc, parts, &mut oracle, 31);
    assert!(
        mo.throughput_tps() > 2.0 * md.throughput_tps(),
        "oracle {} vs lock-all {}",
        mo.throughput_tps(),
        md.throughput_tps()
    );
}

#[test]
fn oracle_never_restarts_and_never_halts() {
    for bench in Bench::ALL {
        let mut oracle = Oracle::new();
        let m = simulate(bench, 4, &mut oracle, 41);
        assert_eq!(m.restarts, 0, "{}: oracle mispredicted", bench.name());
    }
}

#[test]
fn simulation_is_deterministic() {
    let parts = 4;
    let (catalog, wl) = collect(Bench::Tpcc, parts, 800, 51);
    let cfg = TrainingConfig::default();
    let run = || {
        let preds = train(&catalog, parts, &wl, &cfg);
        let mut houdini = Houdini::new(preds, catalog.clone(), parts, HoudiniConfig::default());
        simulate(Bench::Tpcc, parts, &mut houdini, 53)
    };
    let a = run();
    let b = run();
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.no_undo, b.no_undo);
    assert!((a.total_latency_us - b.total_latency_us).abs() < 1e-6);
}

#[test]
fn database_invariants_hold_after_tpcc_run() {
    // AuctionMark money conservation-ish: the simulator must leave the
    // database structurally sound — row counts for immutable tables
    // unchanged, and every committed NewOrder's order row present exactly
    // once (no partial effects survive aborts/restarts).
    let parts = 4;
    let bench = Bench::Tpcc;
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();
    let warehouses_before = db.total_rows(workloads::tpcc::tables::WAREHOUSE);
    let customers_before = db.total_rows(workloads::tpcc::tables::CUSTOMER);
    let stock_before = db.total_rows(workloads::tpcc::tables::STOCK);

    let mut gen = bench.generator(parts, 61);
    let mut oracle = Oracle::new();
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 0.0,
        measure_us: 200_000.0,
        ..Default::default()
    };
    let sim = Simulation::new(&mut db, &registry, &mut oracle, &mut gen, CostModel::default(), cfg);
    sim.run().expect("run");
    let _ = catalog;
    assert_eq!(db.total_rows(workloads::tpcc::tables::WAREHOUSE), warehouses_before);
    assert_eq!(db.total_rows(workloads::tpcc::tables::CUSTOMER), customers_before);
    assert_eq!(db.total_rows(workloads::tpcc::tables::STOCK), stock_before);
    // Orders only grow (NewOrder inserts; nothing deletes orders).
    assert!(db.total_rows(workloads::tpcc::tables::ORDERS) >= 20 * parts as usize);
}

#[test]
fn accuracy_pipeline_runs_for_all_benchmarks() {
    use houdini::{evaluate_accuracy, AccuracyReport};
    let parts = 4;
    for bench in Bench::ALL {
        let (catalog, wl) = collect(bench, parts, 1200, 71);
        let (train_recs, test_recs) = wl.records.split_at(600);
        let tw = Workload { records: train_recs.to_vec() };
        let preds = train(&catalog, parts, &tw, &TrainingConfig::default());
        let mut agg = AccuracyReport::default();
        for (proc, pred) in preds.iter().enumerate() {
            let test: Vec<&trace::TraceRecord> =
                test_recs.iter().filter(|r| r.proc == proc as u32).collect();
            let rep = evaluate_accuracy(pred, &catalog, parts, proc as u32, &test, 0.5);
            agg.merge(&rep);
        }
        assert!(agg.txns > 300, "{}: {} txns evaluated", bench.name(), agg.txns);
        assert!(
            agg.op3_pct() > 99.0,
            "{}: OP3 accuracy {:.1}% — fatal mispredicts are forbidden",
            bench.name(),
            agg.op3_pct()
        );
        assert!(agg.total_pct() > 60.0, "{}: total accuracy {:.1}%", bench.name(), agg.total_pct());
    }
}
