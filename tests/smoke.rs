//! Sub-second canary: the complete collect → train → simulate pipeline on a
//! tiny TATP instance. The heavyweight coverage lives in `end_to_end.rs`;
//! this test exists so `cargo test smoke` gives a fast signal that the
//! whole stack is wired together.

use engine::run_offline;
use predictive_oltp::prelude::*;

#[test]
fn tatp_collect_train_simulate_smoke() {
    let parts = 2;
    let n = 150;

    // Collect.
    let mut db = Bench::Tatp.database(parts);
    let registry = Bench::Tatp.registry();
    let catalog = registry.catalog();
    let mut gen = Bench::Tatp.generator(parts, 5);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 4);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true)
            .expect("offline trace txn");
        records.push(out.record);
    }
    let wl = Workload { records };
    assert_eq!(wl.records.len(), n);

    // Train.
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    assert_eq!(preds.len(), catalog.len());
    assert!(preds.iter().any(|p| !p.disabled), "training must enable some procedure");

    // Simulate (short measured window).
    let mut houdini = Houdini::new(preds, catalog, parts, HoudiniConfig::default());
    let mut db = Bench::Tatp.database(parts);
    let mut gen = Bench::Tatp.generator(parts, 6);
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 5_000.0,
        measure_us: 25_000.0,
        ..Default::default()
    };
    let sim =
        Simulation::new(&mut db, &registry, &mut houdini, &mut gen, CostModel::default(), cfg);
    let (metrics, _) = sim.run().expect("simulation must not halt");
    assert!(metrics.committed > 0, "smoke simulation must commit transactions");
}
