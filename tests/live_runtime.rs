//! Cross-checks between the live multi-threaded partition runtime and the
//! deterministic simulator: real threads must not change *what* happens to
//! a transaction (commit/abort/restart), only *when*.
//!
//! TATP makes an exact comparison possible even under concurrency: every
//! abort path depends only on statically-loaded data (subscriber rows,
//! SPECIAL_FACILITY's IS_ACTIVE flag), and the per-client generator blocks
//! give inserts globally-unique keys — so the commit/abort outcome of each
//! request is independent of how client streams interleave.

use bench::collect_trace;
use common::{ProcId, Value};
use engine::baselines::{AssumeDistributed, AssumeSinglePartition};
use engine::{
    run_live, CostModel, LiveConfig, LiveRuntime, RequestGenerator, RunMetrics, SimConfig,
    Simulation,
};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use std::sync::mpsc::channel;
use std::time::Duration;
use workloads::Bench;

const PARTS: u32 = 4;
const CLIENTS_PER_PARTITION: u32 = 1;
const REQUESTS_PER_CLIENT: u64 = 120;
const SEED: u64 = 417;

/// Routes the simulator's shared-generator interface onto the same
/// independent per-client streams the live runtime uses, so both runs see
/// the identical request population.
struct SplitGen {
    gens: Vec<Box<dyn RequestGenerator + Send>>,
}

impl SplitGen {
    fn new(clients: u64) -> Self {
        SplitGen {
            gens: (0..clients).map(|c| Bench::Tatp.client_generator(PARTS, SEED, c)).collect(),
        }
    }
}

impl RequestGenerator for SplitGen {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.gens[client as usize].next_request(client)
    }
}

fn trained_predictors() -> (Houdini, Houdini) {
    let (catalog, wl) = collect_trace(Bench::Tatp, PARTS, 2_000, 29);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, PARTS, &wl, &cfg);
    let a = Houdini::new(preds.clone(), catalog.clone(), PARTS, HoudiniConfig::default());
    let b = Houdini::new(preds, catalog, PARTS, HoudiniConfig::default());
    (a, b)
}

fn run_simulated(advisor: &mut Houdini) -> (RunMetrics, storage::Database) {
    let mut db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let clients = u64::from(PARTS * CLIENTS_PER_PARTITION);
    let mut gen = SplitGen::new(clients);
    let cfg = SimConfig {
        num_partitions: PARTS,
        clients_per_partition: CLIENTS_PER_PARTITION,
        warmup_us: 0.0,
        measure_us: 1e12, // the request cap, not the clock, ends the run
        seed: SEED,
        max_requests_per_client: Some(REQUESTS_PER_CLIENT),
        ..Default::default()
    };
    let sim = Simulation::new(&mut db, &reg, advisor, &mut gen, CostModel::default(), cfg);
    let (metrics, _) = sim.run().expect("simulation must not halt");
    (metrics, db)
}

fn run_live_runtime(advisor: Houdini) -> (RunMetrics, storage::Database) {
    let db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let cfg = LiveConfig {
        clients_per_partition: CLIENTS_PER_PARTITION,
        requests_per_client: REQUESTS_PER_CLIENT,
        max_restarts: 2,
        seed: SEED,
        commit_flush_us: 0,
        msg_delay_us: 0,
        ..Default::default()
    };
    let make_gen = |client: u64| Bench::Tatp.client_generator(PARTS, SEED, client);
    run_live(db, reg, advisor, &make_gen, &cfg).expect("live runtime must not halt")
}

#[test]
fn live_runtime_matches_simulation_on_seeded_tatp() {
    let (mut sim_houdini, live_houdini) = trained_predictors();
    let (sim_m, sim_db) = run_simulated(&mut sim_houdini);
    let (live_m, live_db) = run_live_runtime(live_houdini);

    let issued = u64::from(PARTS * CLIENTS_PER_PARTITION) * REQUESTS_PER_CLIENT;
    // Conservation on both sides.
    assert_eq!(sim_m.committed + sim_m.user_aborts, issued);
    assert_eq!(live_m.committed + live_m.user_aborts, issued);

    // Correctness agreement: identical commit/abort outcomes...
    assert_eq!(live_m.committed, sim_m.committed, "commit counts diverged");
    assert_eq!(live_m.user_aborts, sim_m.user_aborts, "abort counts diverged");
    assert_eq!(
        live_m.committed_by_proc, sim_m.committed_by_proc,
        "per-procedure commit counts diverged"
    );
    // ...and identical advisor accuracy: a mispredict depends only on the
    // plan and the request, not on thread interleaving.
    assert_eq!(live_m.restarts, sim_m.restarts, "mispredict counts diverged");
    assert_eq!(
        live_m.single_partition, sim_m.single_partition,
        "single-partition classification diverged"
    );
    assert_eq!(live_m.distributed, sim_m.distributed);

    // Both executions mutated a real database; insert/delete effects must
    // land identically (row counts are interleaving-independent).
    for table in 0..4 {
        assert_eq!(
            live_db.total_rows(table),
            sim_db.total_rows(table),
            "table {table} row counts diverged"
        );
    }

    // Sanity: the workload exercised the interesting paths.
    assert!(live_m.committed > 0);
    assert!(live_m.distributed > 0, "broadcast procedures ran distributed");
}

/// OP4 must be invisible in outcome space: the same trained Houdini with
/// early prepare + speculation enabled vs disabled (the only difference
/// being `TxnPlan::early_prepare`) must produce identical commit / abort /
/// restart / per-procedure counts and identical final table row counts on
/// the seeded TATP population. This pins the whole live speculation
/// protocol — early release, deferred acknowledgements, cascading rollback
/// and transparent redo — as outcome-preserving.
#[test]
fn op4_speculation_does_not_change_outcomes() {
    let (catalog, wl) = collect_trace(Bench::Tatp, PARTS, 2_000, 29);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, PARTS, &wl, &cfg);
    let on = Houdini::new(
        preds.clone(),
        catalog.clone(),
        PARTS,
        HoudiniConfig { early_prepare: true, ..Default::default() },
    );
    let off = Houdini::new(
        preds,
        catalog,
        PARTS,
        HoudiniConfig { early_prepare: false, ..Default::default() },
    );
    let (m_on, db_on) = run_live_runtime(on);
    let (m_off, db_off) = run_live_runtime(off);
    assert_eq!(m_on.committed, m_off.committed, "OP4 changed commit counts");
    assert_eq!(m_on.user_aborts, m_off.user_aborts, "OP4 changed abort counts");
    assert_eq!(m_on.restarts, m_off.restarts, "OP4 caused extra mispredicts");
    assert_eq!(
        m_on.committed_by_proc, m_off.committed_by_proc,
        "OP4 changed per-procedure outcomes"
    );
    assert_eq!(m_off.speculative, 0, "ablation must not speculate");
    assert_eq!(m_off.cascaded_aborts, 0);
    for table in 0..4 {
        assert_eq!(
            db_on.total_rows(table),
            db_off.total_rows(table),
            "table {table} row counts diverged under OP4"
        );
    }
}

/// Distributed-heavy TPC-C under real concurrency, OP4 on: conservation
/// (no transaction lost or duplicated through deferred acknowledgements
/// and cascade redos) plus a storage-level invariant that survives any
/// interleaving — every committed NewOrder inserts exactly one ORDERS row,
/// so cascaded speculative commits that were rolled back and redone must
/// neither lose nor double-apply their inserts.
#[test]
fn tpcc_speculation_conserves_requests_and_rows() {
    const CLIENTS: u32 = 2;
    const REQUESTS: u64 = 150;
    let (catalog, wl) = collect_trace(Bench::Tpcc, PARTS, 2_000, 31);
    let preds = train(&catalog, PARTS, &wl, &TrainingConfig::default());
    let houdini = Houdini::new(preds, catalog, PARTS, HoudiniConfig::default());
    let db = Bench::Tpcc.database(PARTS);
    let orders_table = db.table_id("ORDERS").expect("ORDERS exists");
    let orders_before = db.total_rows(orders_table);
    let reg = Bench::Tpcc.registry();
    let cfg = LiveConfig {
        clients_per_partition: CLIENTS,
        requests_per_client: REQUESTS,
        max_restarts: 2,
        seed: 37,
        commit_flush_us: 50,
        msg_delay_us: 0,
        ..Default::default()
    };
    let make_gen = |client: u64| Bench::Tpcc.client_generator(PARTS, 37, client);
    let (m, db) = run_live(db, reg, houdini, &make_gen, &cfg).expect("live runtime must not halt");
    let issued = u64::from(PARTS * CLIENTS) * REQUESTS;
    assert_eq!(m.committed + m.user_aborts, issued, "lost or duplicated transactions");
    // NewOrder is registry index 1 (procedure letter I).
    let committed_new_orders = m.committed_by_proc.get(&1).copied().unwrap_or(0);
    assert_eq!(
        db.total_rows(orders_table) - orders_before,
        committed_new_orders as usize,
        "ORDERS rows must match committed NewOrders exactly (cascade safety)"
    );
}

#[test]
fn workers_shut_down_cleanly_when_generators_run_dry() {
    // The whole run — including worker shutdown and shard reassembly —
    // must finish; a deadlocked worker or a lost shutdown message would
    // hang forever, so the test fails loudly on a generous timeout instead.
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let advisor = AssumeSinglePartition::new();
        let db = Bench::Tatp.database(PARTS);
        let reg = Bench::Tatp.registry();
        let cfg = LiveConfig {
            clients_per_partition: 2,
            requests_per_client: 60,
            max_restarts: 2,
            seed: 11,
            commit_flush_us: 0,
            msg_delay_us: 0,
            ..Default::default()
        };
        let make_gen = |client: u64| Bench::Tatp.client_generator(PARTS, 11, client);
        let (m, db) = run_live(db, reg, advisor, &make_gen, &cfg).expect("no halts");
        done_tx.send((m.committed + m.user_aborts, db.num_partitions())).unwrap();
    });
    let (finished, parts) = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("live runtime deadlocked after the generator ran dry");
    assert_eq!(finished, u64::from(PARTS) * 2 * 60, "transactions lost in shutdown");
    assert_eq!(parts, PARTS, "shards were not all returned");
}

/// The embeddable handle API (`LiveRuntime` + `Client`): application
/// threads join and leave in two waves on their own OS threads, a metrics
/// snapshot is taken between the waves without stopping the runtime, and
/// `shutdown` reassembles the database.
#[test]
fn client_handles_join_and_leave_mid_run() {
    const WAVE_CLIENTS: u64 = 3;
    const PER_CLIENT: u64 = 40;
    let db = Bench::Tatp.database(PARTS);
    let subs_before = db.total_rows(0);
    let cfg = LiveConfig { seed: 11, ..Default::default() };
    let rt = LiveRuntime::start(db, Bench::Tatp.registry(), AssumeSinglePartition::new(), cfg);
    let mut issued = 0u64;
    for wave in 0..2u64 {
        std::thread::scope(|s| {
            for _ in 0..WAVE_CLIENTS {
                let mut client = rt.client();
                s.spawn(move || {
                    let id = client.id();
                    let mut gen = Bench::Tatp.client_generator(PARTS, 11, id);
                    for _ in 0..PER_CLIENT {
                        let (proc, args) = gen.next_request(id);
                        client.call(proc, args).expect("mid-run call failed");
                    }
                    // The handle drops here: this client leaves the run.
                });
            }
        });
        issued += WAVE_CLIENTS * PER_CLIENT;
        // Every completed call is visible to a mid-run snapshot, and the
        // ids keep counting up across waves (never reused).
        let snap = rt.metrics();
        assert_eq!(snap.committed + snap.user_aborts, issued, "wave {wave} snapshot");
        assert!(snap.window_us > 0.0, "snapshot carries the elapsed window");
    }
    assert_eq!(rt.client().id(), 2 * WAVE_CLIENTS, "ids assigned in mint order");
    let (m, db) = rt.shutdown();
    assert_eq!(m.committed + m.user_aborts, issued, "transactions lost across waves");
    assert_eq!(db.num_partitions(), PARTS, "shards were not all returned");
    assert_eq!(db.total_rows(0), subs_before, "SUBSCRIBER rows must survive intact");
}

/// `shutdown` racing live traffic: client threads keep submitting
/// (lock-all plans, so multi-partition 2PC transactions are in flight
/// with real message delays) while the main thread pulls the plug.
/// Accepted work drains — the reassembled database is consistent — and
/// racing calls fail cleanly with `Err` instead of hanging; the whole
/// teardown is bounded by a generous timeout.
#[test]
fn shutdown_drains_distributed_transactions_in_flight() {
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let db = Bench::Tatp.database(PARTS);
        let subs_before = db.total_rows(0);
        let cfg = LiveConfig { seed: 13, msg_delay_us: 200, ..Default::default() };
        let rt = LiveRuntime::start(db, Bench::Tatp.registry(), AssumeDistributed::new(), cfg);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut client = rt.client();
            handles.push(std::thread::spawn(move || {
                let id = client.id();
                let mut gen = Bench::Tatp.client_generator(PARTS, 13, id);
                let mut completed = 0u64;
                for _ in 0..500 {
                    let (proc, args) = gen.next_request(id);
                    match client.call(proc, args) {
                        Ok(_) => completed += 1,
                        // The runtime shut down underneath us: expected.
                        Err(_) => break,
                    }
                }
                completed
            }));
        }
        // Let multi-partition transactions get in flight, then shut down
        // while the client threads are still submitting.
        std::thread::sleep(Duration::from_millis(30));
        let (m, db) = rt.shutdown();
        let completed: u64 =
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).sum();
        done_tx.send((m, db.num_partitions(), db.total_rows(0), subs_before, completed)).unwrap();
    });
    let (m, parts, subs_after, subs_before, completed) = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("shutdown with in-flight distributed transactions deadlocked");
    assert_eq!(parts, PARTS, "all shards reassembled");
    assert_eq!(subs_after, subs_before, "drained shards must be consistent");
    assert!(completed > 0, "some transactions completed before the plug was pulled");
    // The final metrics only count calls whose fold beat the shutdown
    // snapshot; nothing it counts can exceed what clients observed.
    assert!(
        m.committed + m.user_aborts <= completed,
        "metrics invented transactions: {} + {} > {completed}",
        m.committed,
        m.user_aborts,
    );
}

/// Lifecycle edges, timeout-guarded: dropping a runtime without
/// `shutdown` joins every owned thread (the double-teardown path — Drop
/// after the explicit teardown machinery — must be a no-op, not a hang),
/// an orphaned `Client` whose runtime is gone errors cleanly, and a fresh
/// runtime starts and shuts down normally right afterwards.
#[test]
fn drop_without_shutdown_and_restart_are_clean() {
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let rt = LiveRuntime::start(
            Bench::Tatp.database(PARTS),
            Bench::Tatp.registry(),
            AssumeSinglePartition::new(),
            LiveConfig::default(),
        );
        let mut orphan = rt.client();
        drop(rt); // Drop tears down: joins workers, discards results.
        let (proc, args) =
            Bench::Tatp.client_generator(PARTS, 3, orphan.id()).next_request(orphan.id());
        assert!(orphan.call(proc, args).is_err(), "orphan call must error, not hang");
        // A fresh runtime on the same thread serves and shuts down.
        let rt = LiveRuntime::start(
            Bench::Tatp.database(PARTS),
            Bench::Tatp.registry(),
            AssumeSinglePartition::new(),
            LiveConfig::default(),
        );
        let mut client = rt.client();
        let mut gen = Bench::Tatp.client_generator(PARTS, 3, client.id());
        for _ in 0..20 {
            let (proc, args) = gen.next_request(client.id());
            client.call(proc, args).expect("fresh runtime must serve");
        }
        let (m, db) = rt.shutdown();
        done_tx.send((m.committed + m.user_aborts, db.num_partitions())).unwrap();
    });
    let (finished, parts) =
        done_rx.recv_timeout(Duration::from_secs(120)).expect("drop/restart lifecycle deadlocked");
    assert_eq!(finished, 20, "fresh runtime lost transactions");
    assert_eq!(parts, PARTS);
}

/// The same shutdown race on the lock-free single-partition fast path: a
/// `Single` message can be queued *behind* the worker's shutdown sentinel
/// and dropped unprocessed when the worker exits. Because the reply
/// sender travels inside the message, that drop disconnects the reply
/// channel and the racing call must surface `Err` — not block forever on
/// a receiver whose sender the client itself keeps alive.
#[test]
fn shutdown_races_single_partition_calls_cleanly() {
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let cfg = LiveConfig { seed: 17, ..Default::default() };
        let rt = LiveRuntime::start(
            Bench::Tatp.database(PARTS),
            Bench::Tatp.registry(),
            AssumeSinglePartition::new(),
            cfg,
        );
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut client = rt.client();
            handles.push(std::thread::spawn(move || {
                let id = client.id();
                let mut gen = Bench::Tatp.client_generator(PARTS, 17, id);
                let mut completed = 0u64;
                // Far more requests than fit before the shutdown below:
                // the stream is still hammering the fast path when the
                // workers exit, so some calls race the sentinel.
                for _ in 0..200_000 {
                    let (proc, args) = gen.next_request(id);
                    if client.call(proc, args).is_err() {
                        break;
                    }
                    completed += 1;
                }
                completed
            }));
        }
        std::thread::sleep(Duration::from_millis(10));
        let (_, db) = rt.shutdown();
        let completed: u64 =
            handles.into_iter().map(|h| h.join().expect("client thread panicked")).sum();
        done_tx.send((completed, db.num_partitions())).unwrap();
    });
    let (completed, parts) = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("single-partition call racing shutdown hung");
    assert!(completed > 0, "some fast-path calls completed before shutdown");
    assert_eq!(parts, PARTS);
}
