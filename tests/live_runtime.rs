//! Cross-checks between the live multi-threaded partition runtime and the
//! deterministic simulator: real threads must not change *what* happens to
//! a transaction (commit/abort/restart), only *when*.
//!
//! TATP makes an exact comparison possible even under concurrency: every
//! abort path depends only on statically-loaded data (subscriber rows,
//! SPECIAL_FACILITY's IS_ACTIVE flag), and the per-client generator blocks
//! give inserts globally-unique keys — so the commit/abort outcome of each
//! request is independent of how client streams interleave.

use bench::collect_trace;
use common::{ProcId, Value};
use engine::{
    run_live, CostModel, LiveConfig, RequestGenerator, RunMetrics, SimConfig, Simulation,
};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use std::sync::mpsc::channel;
use std::time::Duration;
use workloads::Bench;

const PARTS: u32 = 4;
const CLIENTS_PER_PARTITION: u32 = 1;
const REQUESTS_PER_CLIENT: u64 = 120;
const SEED: u64 = 417;

/// Routes the simulator's shared-generator interface onto the same
/// independent per-client streams the live runtime uses, so both runs see
/// the identical request population.
struct SplitGen {
    gens: Vec<Box<dyn RequestGenerator + Send>>,
}

impl SplitGen {
    fn new(clients: u64) -> Self {
        SplitGen {
            gens: (0..clients).map(|c| Bench::Tatp.client_generator(PARTS, SEED, c)).collect(),
        }
    }
}

impl RequestGenerator for SplitGen {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.gens[client as usize].next_request(client)
    }
}

fn trained_predictors() -> (Houdini, Houdini) {
    let (catalog, wl) = collect_trace(Bench::Tatp, PARTS, 2_000, 29);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, PARTS, &wl, &cfg);
    let a = Houdini::new(preds.clone(), catalog.clone(), PARTS, HoudiniConfig::default());
    let b = Houdini::new(preds, catalog, PARTS, HoudiniConfig::default());
    (a, b)
}

fn run_simulated(advisor: &mut Houdini) -> (RunMetrics, storage::Database) {
    let mut db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let clients = u64::from(PARTS * CLIENTS_PER_PARTITION);
    let mut gen = SplitGen::new(clients);
    let cfg = SimConfig {
        num_partitions: PARTS,
        clients_per_partition: CLIENTS_PER_PARTITION,
        warmup_us: 0.0,
        measure_us: 1e12, // the request cap, not the clock, ends the run
        seed: SEED,
        max_requests_per_client: Some(REQUESTS_PER_CLIENT),
        ..Default::default()
    };
    let sim = Simulation::new(&mut db, &reg, advisor, &mut gen, CostModel::default(), cfg);
    let (metrics, _) = sim.run().expect("simulation must not halt");
    (metrics, db)
}

fn run_live_runtime(advisor: &Houdini) -> (RunMetrics, storage::Database) {
    let db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let cfg = LiveConfig {
        clients_per_partition: CLIENTS_PER_PARTITION,
        requests_per_client: REQUESTS_PER_CLIENT,
        max_restarts: 2,
        seed: SEED,
        commit_flush_us: 0,
        msg_delay_us: 0,
        ..Default::default()
    };
    let make_gen = |client: u64| Bench::Tatp.client_generator(PARTS, SEED, client);
    run_live(db, &reg, advisor, &make_gen, &cfg).expect("live runtime must not halt")
}

#[test]
fn live_runtime_matches_simulation_on_seeded_tatp() {
    let (mut sim_houdini, live_houdini) = trained_predictors();
    let (sim_m, sim_db) = run_simulated(&mut sim_houdini);
    let (live_m, live_db) = run_live_runtime(&live_houdini);

    let issued = u64::from(PARTS * CLIENTS_PER_PARTITION) * REQUESTS_PER_CLIENT;
    // Conservation on both sides.
    assert_eq!(sim_m.committed + sim_m.user_aborts, issued);
    assert_eq!(live_m.committed + live_m.user_aborts, issued);

    // Correctness agreement: identical commit/abort outcomes...
    assert_eq!(live_m.committed, sim_m.committed, "commit counts diverged");
    assert_eq!(live_m.user_aborts, sim_m.user_aborts, "abort counts diverged");
    assert_eq!(
        live_m.committed_by_proc, sim_m.committed_by_proc,
        "per-procedure commit counts diverged"
    );
    // ...and identical advisor accuracy: a mispredict depends only on the
    // plan and the request, not on thread interleaving.
    assert_eq!(live_m.restarts, sim_m.restarts, "mispredict counts diverged");
    assert_eq!(
        live_m.single_partition, sim_m.single_partition,
        "single-partition classification diverged"
    );
    assert_eq!(live_m.distributed, sim_m.distributed);

    // Both executions mutated a real database; insert/delete effects must
    // land identically (row counts are interleaving-independent).
    for table in 0..4 {
        assert_eq!(
            live_db.total_rows(table),
            sim_db.total_rows(table),
            "table {table} row counts diverged"
        );
    }

    // Sanity: the workload exercised the interesting paths.
    assert!(live_m.committed > 0);
    assert!(live_m.distributed > 0, "broadcast procedures ran distributed");
}

/// OP4 must be invisible in outcome space: the same trained Houdini with
/// early prepare + speculation enabled vs disabled (the only difference
/// being `TxnPlan::early_prepare`) must produce identical commit / abort /
/// restart / per-procedure counts and identical final table row counts on
/// the seeded TATP population. This pins the whole live speculation
/// protocol — early release, deferred acknowledgements, cascading rollback
/// and transparent redo — as outcome-preserving.
#[test]
fn op4_speculation_does_not_change_outcomes() {
    let (catalog, wl) = collect_trace(Bench::Tatp, PARTS, 2_000, 29);
    let cfg = TrainingConfig::default();
    let preds = train(&catalog, PARTS, &wl, &cfg);
    let on = Houdini::new(
        preds.clone(),
        catalog.clone(),
        PARTS,
        HoudiniConfig { early_prepare: true, ..Default::default() },
    );
    let off = Houdini::new(
        preds,
        catalog,
        PARTS,
        HoudiniConfig { early_prepare: false, ..Default::default() },
    );
    let (m_on, db_on) = run_live_runtime(&on);
    let (m_off, db_off) = run_live_runtime(&off);
    assert_eq!(m_on.committed, m_off.committed, "OP4 changed commit counts");
    assert_eq!(m_on.user_aborts, m_off.user_aborts, "OP4 changed abort counts");
    assert_eq!(m_on.restarts, m_off.restarts, "OP4 caused extra mispredicts");
    assert_eq!(
        m_on.committed_by_proc, m_off.committed_by_proc,
        "OP4 changed per-procedure outcomes"
    );
    assert_eq!(m_off.speculative, 0, "ablation must not speculate");
    assert_eq!(m_off.cascaded_aborts, 0);
    for table in 0..4 {
        assert_eq!(
            db_on.total_rows(table),
            db_off.total_rows(table),
            "table {table} row counts diverged under OP4"
        );
    }
}

/// Distributed-heavy TPC-C under real concurrency, OP4 on: conservation
/// (no transaction lost or duplicated through deferred acknowledgements
/// and cascade redos) plus a storage-level invariant that survives any
/// interleaving — every committed NewOrder inserts exactly one ORDERS row,
/// so cascaded speculative commits that were rolled back and redone must
/// neither lose nor double-apply their inserts.
#[test]
fn tpcc_speculation_conserves_requests_and_rows() {
    const CLIENTS: u32 = 2;
    const REQUESTS: u64 = 150;
    let (catalog, wl) = collect_trace(Bench::Tpcc, PARTS, 2_000, 31);
    let preds = train(&catalog, PARTS, &wl, &TrainingConfig::default());
    let houdini = Houdini::new(preds, catalog, PARTS, HoudiniConfig::default());
    let db = Bench::Tpcc.database(PARTS);
    let orders_table = db.table_id("ORDERS").expect("ORDERS exists");
    let orders_before = db.total_rows(orders_table);
    let reg = Bench::Tpcc.registry();
    let cfg = LiveConfig {
        clients_per_partition: CLIENTS,
        requests_per_client: REQUESTS,
        max_restarts: 2,
        seed: 37,
        commit_flush_us: 50,
        msg_delay_us: 0,
        ..Default::default()
    };
    let make_gen = |client: u64| Bench::Tpcc.client_generator(PARTS, 37, client);
    let (m, db) =
        run_live(db, &reg, &houdini, &make_gen, &cfg).expect("live runtime must not halt");
    let issued = u64::from(PARTS * CLIENTS) * REQUESTS;
    assert_eq!(m.committed + m.user_aborts, issued, "lost or duplicated transactions");
    // NewOrder is registry index 1 (procedure letter I).
    let committed_new_orders = m.committed_by_proc.get(&1).copied().unwrap_or(0);
    assert_eq!(
        db.total_rows(orders_table) - orders_before,
        committed_new_orders as usize,
        "ORDERS rows must match committed NewOrders exactly (cascade safety)"
    );
}

#[test]
fn workers_shut_down_cleanly_when_generators_run_dry() {
    // The whole run — including worker shutdown and shard reassembly —
    // must finish; a deadlocked worker or a lost shutdown message would
    // hang forever, so the test fails loudly on a generous timeout instead.
    let (done_tx, done_rx) = channel();
    std::thread::spawn(move || {
        let advisor = engine::baselines::AssumeSinglePartition::new();
        let db = Bench::Tatp.database(PARTS);
        let reg = Bench::Tatp.registry();
        let cfg = LiveConfig {
            clients_per_partition: 2,
            requests_per_client: 60,
            max_restarts: 2,
            seed: 11,
            commit_flush_us: 0,
            msg_delay_us: 0,
            ..Default::default()
        };
        let make_gen = |client: u64| Bench::Tatp.client_generator(PARTS, 11, client);
        let (m, db) = run_live(db, &reg, &advisor, &make_gen, &cfg).expect("no halts");
        done_tx.send((m.committed + m.user_aborts, db.num_partitions())).unwrap();
    });
    let (finished, parts) = done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("live runtime deadlocked after the generator ran dry");
    assert_eq!(finished, u64::from(PARTS) * 2 * 60, "transactions lost in shutdown");
    assert_eq!(parts, PARTS, "shards were not all returned");
}
