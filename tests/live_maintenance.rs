//! End-to-end tests of the §4.5 live maintenance loop: epoch-swapped
//! advisors healing from a seeded workload shift.
//!
//! The first test drives the advisor + maintainer pair single-threaded, so
//! every count is exactly pinned: feedback records, the swap point, the
//! published epoch, and per-epoch accuracy. The second runs the real
//! multi-threaded runtime with a mid-run partition-skew flip; there the
//! feedback interleaving is scheduler-dependent, so it pins inequalities
//! (maintenance arm beats the frozen arm on plan quality) plus feedback
//! conservation.

use engine::{
    run_live, run_offline, CatalogResolver, ExecutedQuery, LiveAdvisor, LiveConfig,
    RequestGenerator, RunMetrics, TxnOutcome,
};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use trace::Workload;
use workloads::{tatp, Bench};

/// Trains TATP predictors from a trace skewed to partitions `[0, hot_hi)`.
fn skewed_predictors(
    parts: u32,
    hot_hi: u32,
    n: usize,
    partitioned: bool,
) -> (engine::Catalog, Vec<houdini::ProcPredictor>) {
    let mut db = Bench::Tatp.database(parts);
    let reg = Bench::Tatp.registry();
    let catalog = reg.catalog();
    let mut gen = tatp::Generator::new(parts, 13).with_hot_partitions(0, hot_hi);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 4);
        let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).expect("trace txn");
        records.push(out.record);
    }
    let cfg = TrainingConfig { partitioned, ..Default::default() };
    let preds = train(&catalog, parts, &Workload { records }, &cfg);
    (catalog, preds)
}

/// GetSubscriberData is registry index 3 (procedure letter D): one
/// single-partition read, no aborts — the cleanest fully-deterministic
/// vehicle for the shift.
const GET_SUBSCRIBER: u32 = 3;

#[test]
fn monitor_threshold_fires_end_to_end_with_pinned_counts() {
    let parts = 2;
    // Global models (one per procedure) keep the monitor bookkeeping
    // exactly predictable; trained on partition 0 only, so every
    // partition-1 state is dark.
    let (catalog, preds) = skewed_predictors(parts, 1, 800, false);
    let h = Houdini::new(
        preds,
        catalog.clone(),
        parts,
        HoudiniConfig { maintenance_min_window: 50, ..Default::default() },
    );
    let mut maintainer = LiveAdvisor::maintainer(&h).expect("maintenance is on by default");
    let mut db = Bench::Tatp.database(parts);
    let reg = Bench::Tatp.registry();
    let resolver = CatalogResolver::new(&catalog, parts);
    let ctx =
        engine::PlanContext { catalog: &catalog, num_partitions: parts, random_local_partition: 0 };

    assert_eq!(h.live_epoch(), 0);
    let mut swapped_at = None;
    // 60 shifted requests: subscribers at partition 1 only. Each runs one
    // query + commit = 2 observed transitions; with min_window 50 and 0%
    // coverage, the monitor must fire during the 25th teardown.
    for i in 0..60u64 {
        let s_id = 1 + 2 * (i as i64 % 100); // odd => partition 1
        let req = engine::Request {
            proc: GET_SUBSCRIBER,
            args: vec![common::Value::Int(s_id)],
            origin_node: 0,
        };
        let (plan, mut session) = h.plan_live(&req, &ctx);
        if swapped_at.is_none() {
            assert_eq!(
                plan.lock_set,
                common::PartitionSet::all(parts),
                "request {i}: dark estimate must fall back to lock-all"
            );
        } else {
            assert_eq!(
                plan.lock_set,
                common::PartitionSet::single(1),
                "request {i}: healed model must plan single-partition"
            );
        }
        let out = run_offline(&mut db, &reg, &catalog, GET_SUBSCRIBER, &req.args, true)
            .expect("offline execution");
        assert!(out.committed);
        for q in &out.record.queries {
            use trace::PartitionResolver as _;
            let parts_set = resolver.partitions(GET_SUBSCRIBER, q.query, &q.params);
            let _ = h.on_query_live(
                &mut session,
                &ExecutedQuery {
                    query: q.query,
                    params: q.params.clone(),
                    partitions: parts_set,
                    is_write: catalog.proc(GET_SUBSCRIBER).query(q.query).is_write(),
                },
            );
        }
        let fb = h
            .on_end_live(session, TxnOutcome::Committed)
            .expect("maintenance feedback at teardown");
        assert_eq!(fb.proc, GET_SUBSCRIBER);
        assert_eq!(fb.path.len(), 1, "one executed query per request");
        maintainer.absorb(fb);
        if swapped_at.is_none() && h.live_epoch() > 0 {
            swapped_at = Some(i);
        }
    }

    // Pinned: the 25th teardown (index 24) filled the 50-transition window
    // at 0% coverage and published epoch 1; nothing re-fired afterwards.
    assert_eq!(swapped_at, Some(24), "swap point is deterministic");
    assert_eq!(h.live_epoch(), 1);
    let report = maintainer.report();
    assert_eq!(report.model_swaps, 1);
    assert_eq!(report.feedback_records, 60);
    // Pinned per-epoch accuracy: 25 dark transactions against epoch 0
    // (50 observed, 0 matched), 35 healed ones against epoch 1 (70/70).
    assert_eq!(report.epoch_accuracy.len(), 2);
    assert_eq!(
        (
            report.epoch_accuracy[0].epoch,
            report.epoch_accuracy[0].observed,
            report.epoch_accuracy[0].matched
        ),
        (0, 50, 0)
    );
    assert_eq!(
        (
            report.epoch_accuracy[1].epoch,
            report.epoch_accuracy[1].observed,
            report.epoch_accuracy[1].matched
        ),
        (1, 70, 70)
    );
    assert_eq!(report.epoch_accuracy[1].accuracy(), Some(1.0), "post-swap accuracy");

    // The frozen configuration has no maintainer at all.
    let frozen = Houdini::new(
        skewed_predictors(parts, 1, 200, false).1,
        catalog,
        parts,
        HoudiniConfig { maintenance: false, ..Default::default() },
    );
    assert!(LiveAdvisor::maintainer(&frozen).is_none());
}

fn drift_run(maintenance: bool) -> RunMetrics {
    const PARTS: u32 = 2;
    const CLIENTS_PER_PARTITION: u32 = 2;
    const REQUESTS: u64 = 400;
    const FLIP_AFTER: u64 = 100;
    let (catalog, preds) = skewed_predictors(PARTS, 1, 1_000, true);
    let h = Houdini::new(
        preds,
        catalog,
        PARTS,
        HoudiniConfig { maintenance, maintenance_min_window: 60, ..Default::default() },
    );
    let db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let cfg = LiveConfig {
        clients_per_partition: CLIENTS_PER_PARTITION,
        requests_per_client: REQUESTS,
        max_restarts: 2,
        seed: 23,
        commit_flush_us: 0,
        msg_delay_us: 0,
        ..Default::default()
    };
    let make_gen = |client: u64| {
        Box::new(
            tatp::Generator::for_client(PARTS, 23, client)
                .with_hot_partitions(0, 1)
                .with_partition_flip(1, 2, FLIP_AFTER),
        ) as Box<dyn RequestGenerator + Send>
    };
    let (m, _) = run_live(db, reg, h, &make_gen, &cfg).expect("drift run must not halt");
    let issued = u64::from(PARTS * CLIENTS_PER_PARTITION) * REQUESTS;
    assert_eq!(m.committed + m.user_aborts, issued, "lost transactions");
    m
}

#[test]
fn live_runtime_heals_from_mid_run_skew_flip() {
    let maint = drift_run(true);
    let frozen = drift_run(false);

    // The frozen advisor never learns: no swaps, no feedback pipeline.
    assert_eq!(frozen.model_swaps, 0);
    assert_eq!(frozen.feedback_records, 0);
    assert_eq!(frozen.feedback_dropped, 0);

    // The maintenance arm swapped at least one model epoch and consumed
    // feedback; channel conservation: everything emitted was either
    // consumed or counted as dropped, and teardowns bound emissions.
    assert!(maint.model_swaps >= 1, "no epoch swap under drift");
    assert!(maint.feedback_records > 0);
    let teardowns = maint.committed + maint.user_aborts + maint.restarts;
    assert!(
        maint.feedback_records + maint.feedback_dropped <= teardowns,
        "more feedback than teardowns: {} + {} > {teardowns}",
        maint.feedback_records,
        maint.feedback_dropped,
    );

    // Healed models plan the shifted traffic single-partition again;
    // frozen models dead-end into lock-all fallbacks forever.
    assert!(
        maint.single_partition > frozen.single_partition,
        "maintenance arm must recover single-partition plans: {} <= {}",
        maint.single_partition,
        frozen.single_partition,
    );
    let maint_op2 = maint.overall_op2_pct().expect("op2 measured");
    let frozen_op2 = frozen.overall_op2_pct().expect("op2 measured");
    assert!(
        maint_op2 > frozen_op2,
        "maintenance arm must beat frozen on OP2 accuracy: {maint_op2:.1} <= {frozen_op2:.1}"
    );
    // And the recovery is visible per epoch: the last epoch's accuracy
    // beats epoch 0's (the drifted trained models).
    let first = maint.epoch_accuracy.first().expect("epoch 0 observed");
    let last = maint.epoch_accuracy.last().expect("swapped epoch observed");
    assert!(last.epoch > first.epoch);
    assert!(
        last.accuracy().unwrap_or(0.0) > first.accuracy().unwrap_or(1.0),
        "accuracy must recover across epochs: {:?} -> {:?}",
        first.accuracy(),
        last.accuracy(),
    );
}
