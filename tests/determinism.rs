//! Reproducibility guarantees: every randomized component is seeded, so
//! identical seeds must yield bit-identical traces and different seeds must
//! diverge. Future performance work (parallel collection, batching) must
//! keep this contract — the paper's experiments are only comparable because
//! reruns see the same workload.

use bench::collect_trace;
use workloads::Bench;

#[test]
fn tpcc_trace_collection_is_deterministic() {
    let (_, a) = collect_trace(Bench::Tpcc, 4, 400, 1234);
    let (_, b) = collect_trace(Bench::Tpcc, 4, 400, 1234);
    assert_eq!(a.records.len(), 400);
    assert_eq!(a.records, b.records, "same seed must reproduce the trace exactly");
}

#[test]
fn tpcc_trace_collection_diverges_across_seeds() {
    let (_, a) = collect_trace(Bench::Tpcc, 4, 400, 1234);
    let (_, c) = collect_trace(Bench::Tpcc, 4, 400, 4321);
    assert_ne!(a.records, c.records, "different seeds must produce different traces");
}

#[test]
fn every_benchmark_trace_is_deterministic() {
    for bench in Bench::ALL {
        let (_, a) = collect_trace(bench, 2, 120, 7);
        let (_, b) = collect_trace(bench, 2, 120, 7);
        assert_eq!(a.records, b.records, "{} trace must be reproducible", bench.name());
    }
}
