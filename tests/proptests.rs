//! Property-based tests on the core data structures and invariants.

use common::{PartitionSet, Value};
use engine::{CatalogResolver, PartitionHint, ProcDef, QueryDef, QueryOp};
use mapping::{build_mapping, MappingConfig};
use markov::build_model;
use proptest::prelude::*;
use std::collections::BTreeSet;
use storage::{Database, Schema, UndoLog};
use trace::{PartitionResolver as _, QueryRecord, TraceRecord};

// ---------------------------------------------------------------------------
// PartitionSet behaves like a set of small integers.
// ---------------------------------------------------------------------------

fn pset(v: &[u32]) -> PartitionSet {
    PartitionSet::from_iter(v.iter().copied())
}

proptest! {
    #[test]
    fn partition_set_matches_btreeset(
        a in proptest::collection::vec(0u32..64, 0..20),
        b in proptest::collection::vec(0u32..64, 0..20),
    ) {
        let (sa, sb) = (pset(&a), pset(&b));
        let (ma, mb): (BTreeSet<u32>, BTreeSet<u32>) =
            (a.iter().copied().collect(), b.iter().copied().collect());
        prop_assert_eq!(sa.len() as usize, ma.len());
        prop_assert_eq!(
            sa.union(sb).iter().collect::<Vec<_>>(),
            ma.union(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.intersect(sb).iter().collect::<Vec<_>>(),
            ma.intersection(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            sa.difference(sb).iter().collect::<Vec<_>>(),
            ma.difference(&mb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(sa.is_subset(sb), ma.is_subset(&mb));
    }

    #[test]
    fn partition_set_insert_remove_roundtrip(
        items in proptest::collection::vec(0u32..64, 0..30),
        probe in 0u32..64,
    ) {
        let mut s = PartitionSet::EMPTY;
        for &i in &items {
            s.insert(i);
        }
        prop_assert_eq!(s.contains(probe), items.contains(&probe));
        s.remove(probe);
        prop_assert!(!s.contains(probe));
    }
}

// ---------------------------------------------------------------------------
// Undo logging: any sequence of operations rolls back to the pre-state.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, 0i64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..40, 0i64..1000).prop_map(|(k, v)| Op::Update(k, v)),
        (0i64..40).prop_map(Op::Delete),
    ]
}

fn snapshot(db: &Database) -> Vec<(Vec<Value>, Vec<Value>)> {
    let mut rows = Vec::new();
    for p in 0..db.num_partitions() {
        for (k, r) in db.table(p, 0).iter() {
            rows.push((k.clone(), r.clone()));
        }
    }
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn rollback_restores_prestate(
        seed_rows in proptest::collection::vec((0i64..40, 0i64..1000), 0..15),
        ops in proptest::collection::vec(op_strategy(), 0..25),
    ) {
        let schemas = vec![Schema::new("T", &["ID", "V"], &[0], Some(0))];
        let mut db = Database::new(schemas, 4, &[]);
        let mut setup = UndoLog::new();
        for (k, v) in &seed_rows {
            let p = db.partition_for_value(&Value::Int(*k));
            let _ = db.insert(p, 0, vec![Value::Int(*k), Value::Int(*v)], &mut setup);
        }
        let before = snapshot(&db);

        let mut undo = UndoLog::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let p = db.partition_for_value(&Value::Int(*k));
                    let _ = db.insert(p, 0, vec![Value::Int(*k), Value::Int(*v)], &mut undo);
                }
                Op::Update(k, v) => {
                    let p = db.partition_for_value(&Value::Int(*k));
                    let _ = db.update(p, 0, &[Value::Int(*k)], |r| r[1] = Value::Int(*v), &mut undo);
                }
                Op::Delete(k) => {
                    let p = db.partition_for_value(&Value::Int(*k));
                    let _ = db.delete(p, 0, &[Value::Int(*k)], &mut undo);
                }
            }
        }
        db.rollback(&mut undo).expect("rollback");
        prop_assert_eq!(snapshot(&db), before);
    }
}

// ---------------------------------------------------------------------------
// OP4 cascading rollback: an early-prepared fragment plus any sequence of
// speculatively-committed transactions unwinds LIFO to byte-identical shard
// state (the live runtime's coordinator-abort path).
// ---------------------------------------------------------------------------

fn shard_snapshot(shard: &storage::Shard) -> Vec<(Vec<Value>, Vec<Value>)> {
    let mut rows: Vec<(Vec<Value>, Vec<Value>)> =
        shard.table(0).iter().map(|(k, r)| (k.clone(), r.clone())).collect();
    rows.sort();
    rows
}

fn apply_op(shard: &mut storage::Shard, op: &Op, undo: &mut UndoLog) {
    match op {
        Op::Insert(k, v) => {
            let _ = shard.insert(0, vec![Value::Int(*k), Value::Int(*v)], undo);
        }
        Op::Update(k, v) => {
            let _ = shard.update(0, &[Value::Int(*k)], |r| r[1] = Value::Int(*v), undo);
        }
        Op::Delete(k) => {
            let _ = shard.delete(0, &[Value::Int(*k)], undo);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn speculation_cascade_restores_prestate(
        seed_rows in proptest::collection::vec((0i64..40, 0i64..1000), 0..15),
        fragment in proptest::collection::vec(op_strategy(), 0..15),
        spec_txns in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..10), 0..8),
    ) {
        // Single-partition database so every key lands on the one shard.
        let schemas = vec![Schema::new("T", &["ID", "V"], &[0], Some(0))];
        let mut db = Database::new(schemas, 1, &[]);
        let mut setup = UndoLog::new();
        for (k, v) in &seed_rows {
            let _ = db.insert(0, 0, vec![Value::Int(*k), Value::Int(*v)], &mut setup);
        }
        let mut shard = db.into_shards().pop().expect("one shard");
        let before = shard_snapshot(&shard);

        // The distributed transaction's fragment opens the window...
        let mut frag_undo = UndoLog::new();
        for op in &fragment {
            apply_op(&mut shard, op, &mut frag_undo);
        }
        let mut stack = storage::SpeculationStack::new(frag_undo);
        // ...then speculative transactions commit on top of it.
        for txn in &spec_txns {
            let mut undo = UndoLog::new();
            for op in txn {
                apply_op(&mut shard, op, &mut undo);
            }
            stack.push_commit(undo);
        }
        prop_assert_eq!(stack.depth(), spec_txns.len());

        // Coordinator abort: the cascade must restore the shard exactly.
        let cascaded = shard.rollback_speculation(stack).expect("cascade");
        prop_assert_eq!(cascaded, spec_txns.len() as u64);
        prop_assert_eq!(shard_snapshot(&shard), before);
    }
}

// ---------------------------------------------------------------------------
// Markov model construction invariants.
// ---------------------------------------------------------------------------

fn toy_catalog() -> engine::Catalog {
    let mut c = engine::Catalog::new();
    c.add_proc(ProcDef {
        name: "P".into(),
        queries: vec![
            QueryDef {
                name: "Q0".into(),
                table: 0,
                op: QueryOp::GetByKey { key_params: vec![0] },
                hint: PartitionHint::Param(0),
            },
            QueryDef {
                name: "Q1".into(),
                table: 0,
                op: QueryOp::InsertRow,
                hint: PartitionHint::Param(0),
            },
        ],
        read_only: false,
        can_abort: true,
    });
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn model_invariants(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..2, 0i64..8), 0..6),
                proptest::bool::ANY,
            ),
            1..40,
        ),
    ) {
        let catalog = toy_catalog();
        let resolver = CatalogResolver::new(&catalog, 4);
        let records: Vec<TraceRecord> = txns
            .iter()
            .map(|(queries, aborted)| TraceRecord {
                proc: 0,
                params: vec![],
                queries: queries
                    .iter()
                    .map(|(q, v)| QueryRecord { query: *q, params: vec![Value::Int(*v)] })
                    .collect(),
                aborted: *aborted,
            })
            .collect();
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let model = build_model(0, &refs, &resolver);

        // (1) Edge probabilities from every non-terminal vertex sum to 1.
        for v in model.vertices() {
            if v.edges.is_empty() {
                continue;
            }
            let sum: f64 = v.edges.iter().map(|e| e.prob).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "edge probs sum to {sum}");
        }
        // (2) Probability-table entries are probabilities.
        for v in model.vertices() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v.table.abort));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v.table.single_partition));
            for pp in &v.table.partitions {
                for x in [pp.read, pp.write, pp.finish] {
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&x), "entry {x}");
                }
            }
        }
        // (3) The topological order covers every vertex even when the
        // trace interleavings create cycles (see MarkovModel docs), and on
        // acyclic models it is a true topological order.
        let order = model.topological_order();
        prop_assert_eq!(order.len(), model.len());
        if !model.has_cycle() {
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            for (id, v) in model.vertices().iter().enumerate() {
                for e in &v.edges {
                    prop_assert!(pos[&(id as u32)] < pos[&e.to]);
                }
            }
        }
        // (4) Every record's path exists: replaying it reaches a terminal.
        for rec in &records {
            let mut prev = PartitionSet::EMPTY;
            let mut counters = std::collections::HashMap::new();
            for q in &rec.queries {
                let parts = resolver.partitions(0, q.query, &q.params);
                let counter = *counters
                    .entry(q.query)
                    .and_modify(|c: &mut u16| *c += 1)
                    .or_insert(0u16);
                let key = markov::VertexKey {
                    kind: markov::QueryKind::Query(q.query),
                    counter,
                    partitions: parts,
                    previous: prev,
                };
                prop_assert!(model.find(&key).is_some(), "state {key:?} missing");
                prev = prev.union(parts);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parameter mappings: a perfectly-linked trace always resolves correctly.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mapping_resolves_linked_params(
        scalars in proptest::collection::vec(0i64..100, 5..30),
        arrays in proptest::collection::vec(
            proptest::collection::vec(0i64..100, 1..5),
            5..30,
        ),
    ) {
        let n = scalars.len().min(arrays.len());
        // Proc params: (scalar, array). Query 0 takes the scalar; query 1 is
        // invoked once per array element, taking that element.
        let records: Vec<TraceRecord> = (0..n)
            .map(|i| {
                let mut queries =
                    vec![QueryRecord { query: 0, params: vec![Value::Int(scalars[i])] }];
                for &e in &arrays[i] {
                    queries.push(QueryRecord { query: 1, params: vec![Value::Int(e)] });
                }
                TraceRecord {
                    proc: 0,
                    params: vec![
                        Value::Int(scalars[i]),
                        Value::Array(arrays[i].iter().map(|&e| Value::Int(e)).collect()),
                    ],
                    queries,
                    aborted: false,
                }
            })
            .collect();
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let m = build_mapping(&refs, &MappingConfig::default());
        // Resolution reproduces the linked values on fresh arguments.
        let args = vec![
            Value::Int(42),
            Value::Array(vec![Value::Int(7), Value::Int(9)]),
        ];
        prop_assert_eq!(m.resolve(0, 0, 0, &args), Some(Value::Int(42)));
        prop_assert_eq!(m.resolve(1, 0, 0, &args), Some(Value::Int(7)));
        prop_assert_eq!(m.resolve(1, 1, 0, &args), Some(Value::Int(9)));
        prop_assert_eq!(m.resolve(1, 2, 0, &args), None);
    }
}

// ---------------------------------------------------------------------------
// Trace serialization round-trips arbitrary records.
// ---------------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-z]{0,8}".prop_map(Value::Str),
        proptest::collection::vec(any::<i64>().prop_map(Value::Int), 0..4).prop_map(Value::Array),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn trace_json_roundtrip(
        records in proptest::collection::vec(
            (
                0u32..8,
                proptest::collection::vec(value_strategy(), 0..4),
                proptest::collection::vec(
                    (0u32..4, proptest::collection::vec(value_strategy(), 0..3)),
                    0..5,
                ),
                proptest::bool::ANY,
            ),
            0..10,
        ),
    ) {
        let wl = trace::Workload {
            records: records
                .into_iter()
                .map(|(proc, params, queries, aborted)| TraceRecord {
                    proc,
                    params,
                    queries: queries
                        .into_iter()
                        .map(|(query, params)| QueryRecord { query, params })
                        .collect(),
                    aborted,
                })
                .collect(),
        };
        let mut buf = Vec::new();
        trace::write_trace(&wl, &mut buf).expect("write");
        let back = trace::read_trace(&buf[..]).expect("read");
        prop_assert_eq!(back.records, wl.records);
    }
}

// ---------------------------------------------------------------------------
// Path-estimation invariants over arbitrary toy traces.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn estimate_path_invariants(
        txns in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..2, 0i64..8), 1..6),
                proptest::bool::ANY,
            ),
            3..40,
        ),
        probe in 0i64..8,
    ) {
        use houdini::CatalogRule;
        use markov::{estimate_path, EstimateConfig};

        let catalog = toy_catalog();
        let resolver = CatalogResolver::new(&catalog, 4);
        let records: Vec<TraceRecord> = txns
            .iter()
            .map(|(queries, aborted)| TraceRecord {
                proc: 0,
                params: vec![Value::Int(queries[0].1)],
                queries: queries
                    .iter()
                    .map(|(q, v)| QueryRecord { query: *q, params: vec![Value::Int(*v)] })
                    .collect(),
                aborted: *aborted,
            })
            .collect();
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let model = build_model(0, &refs, &resolver);
        let mapping = build_mapping(&refs, &MappingConfig::default());
        let rule = CatalogRule::new(&catalog, 0, 4);
        let est = estimate_path(
            &model,
            &rule,
            &mapping,
            &[Value::Int(probe)],
            &EstimateConfig::default(),
        );
        // Confidence is a probability.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&est.confidence));
        // The touched set is exactly the union of the per-step predictions.
        let mut union = PartitionSet::EMPTY;
        for &p in &est.step_partitions {
            union = union.union(p);
        }
        prop_assert_eq!(est.touched, union);
        // Steps align with the vertex path (begin + steps [+ terminal]).
        let terminal = usize::from(est.reached_commit || est.reached_abort);
        prop_assert_eq!(est.vertices.len(), 1 + est.step_queries.len() + terminal);
        // The abort probability is a probability.
        prop_assert!((0.0..=1.0 + 1e-9).contains(&est.abort_prob));
    }
}
